#ifndef JFEED_KB_SERIALIZATION_H_
#define JFEED_KB_SERIALIZATION_H_

#include <string>
#include <vector>

#include "core/pattern.h"
#include "core/submission_matcher.h"
#include "kb/patterns.h"
#include "support/result.h"

namespace jfeed::kb {

/// Serializes a pattern to the knowledge-base text format (see below).
/// The format is line-based and human-editable, so instructors can author
/// patterns without recompiling — the "publicly-available knowledge base"
/// artifact of the paper:
///
///   pattern odd-positions
///     name: Accessing odd positions sequentially
///     var: x
///     var: s
///     node Assign
///       exact: x = 0
///       approx: x = -?\d+
///       correct: {x} is initialized to 0
///       incorrect: {x} should be initialized to 0
///     edge Data 1 2
///     present: You are correctly accessing ...
///     missing: You are not accessing ...
///   end
std::string SerializePattern(const core::Pattern& pattern);

/// Parses one `pattern ... end` block. Fails with ParseError on malformed
/// input (unknown directive, bad node type, invalid template regex, edge
/// out of range).
Result<core::Pattern> ParsePattern(const std::string& text);

/// Serializes a whole library of patterns (blocks separated by blank
/// lines).
std::string SerializePatterns(const std::vector<const core::Pattern*>& all);

/// Parses a multi-pattern document.
Result<std::vector<core::Pattern>> ParsePatterns(const std::string& text);

/// Exports the built-in 24-pattern library in the text format.
std::string ExportPatternLibrary();

/// Serializes an assignment specification (pattern uses with expected
/// counts, and the three kinds of constraints) to the text format:
///
///   assignment assignment1
///     title: Assignment 1 ...
///     method assignment1
///       use odd-positions 1
///       use assign-print 2
///       constraint equality odd-access odd-positions 5 cond-accum-add 3
///         ok: ...
///         fail: ...
///       constraint edge sum-printed cond-accum-add 3 assign-print 1 Data
///       constraint containment c1 odd-positions 5 cond-accum-add
///         expr: c \+= s\[x\]$
///     end
///   end
///
/// Generators, functional suites and pattern variations are code-level
/// artifacts and are not serialized.
std::string SerializeSpec(const core::AssignmentSpec& spec);

/// Parses one `assignment ... end` block; pattern references are resolved
/// against `library` (unknown ids fail with NotFound).
Result<core::AssignmentSpec> ParseSpec(const std::string& text,
                                       const PatternLibrary& library);

}  // namespace jfeed::kb

#endif  // JFEED_KB_SERIALIZATION_H_
