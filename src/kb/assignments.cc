#include "kb/assignments.h"

#include <cstdio>
#include <cstdlib>

namespace jfeed::kb {

using core::Constraint;
using core::MakeContainmentConstraint;
using core::MakeEdgeConstraint;
using core::MakeEqualityConstraint;
using core::MethodSpec;
using core::PatternUse;
using interp::Value;
using synth::ChoiceSite;
using synth::SubmissionTemplate;

namespace {

PatternUse Use(const char* id, int expected_count = 1) {
  PatternUse use;
  use.pattern = &PatternLibrary::Get().at(id);
  use.expected_count = expected_count;
  return use;
}

/// Builds a containment constraint over the union of the participating
/// patterns' variables (which are globally disjoint by construction).
Constraint Contain(const std::string& id, const char* main_pattern, int node,
                   const std::string& expr,
                   std::vector<std::string> supporting,
                   const std::string& ok, const std::string& fail) {
  std::set<std::string> vars = PatternLibrary::Get().at(main_pattern)
                                   .Variables();
  for (const auto& support : supporting) {
    auto sv = PatternLibrary::Get().at(support).Variables();
    vars.insert(sv.begin(), sv.end());
  }
  auto result = MakeContainmentConstraint(id, main_pattern, node, expr, vars,
                                          std::move(supporting), ok, fail);
  if (!result.ok()) {
    std::fprintf(stderr, "bad containment constraint %s: %s\n", id.c_str(),
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(*result);
}

// ---------------------------------------------------------------------------
// Assignment 1 — odd/even positions of an array (Sec. III, Table I row 1).
// ---------------------------------------------------------------------------

Assignment BuildAssignment1() {
  Assignment a;
  a.id = "assignment1";
  a.title = "Assignment 1: add odd / multiply even positions";
  a.description =
      "Given an input array, add odd positions and multiply even positions "
      "in the array; print both results to console. Header: void "
      "assignment1(int[] a).";
  a.paper_space_size = 640000;
  a.paper_pattern_count = 6;
  a.paper_constraint_count = 4;
  a.paper_discrepancies = 24;

  a.generator = SubmissionTemplate(
      "void assignment1(int[] a) {\n"
      "  int ${init_odd};\n"
      "  int ${init_even};\n"
      "  for (int i = ${odd_start}; ${odd_bound}; ${odd_step})\n"
      "    if (${odd_cond})\n"
      "      ${odd_op};\n"
      "  for (int j = ${even_start}; ${even_bound}; ${even_step})\n"
      "    if (${even_cond})\n"
      "      ${even_op};\n"
      "  System.out.println(${print_first});\n"
      "  System.out.println(${print_second});\n"
      "}\n",
      {
          {"init_odd", {"o = 0", "o = 1"}},
          {"init_even", {"e = 1", "e = 0"}},
          {"odd_start", {"0", "1"}},
          {"odd_bound", {"i < a.length", "i <= a.length"}},
          {"odd_step", {"i++", "i += 2"}},
          {"odd_cond",
           {"i % 2 == 1", "i % 2 == 0", "i % 2 != 0", "i % 3 == 1",
            "i % 2 == 2"}},
          {"odd_op",
           {"o += a[i]", "o *= a[i]", "o += i", "o -= a[i]",
            "o += a[i] + 1"}},
          {"even_start", {"0", "1"}},
          {"even_bound", {"j < a.length", "j <= a.length"}},
          {"even_step", {"j++", "j += 2"}},
          {"even_cond",
           {"j % 2 == 0", "j % 2 == 1", "j % 2 != 1", "j % 3 == 0",
            "j % 2 == 2"}},
          {"even_op",
           {"e *= a[j]", "e += a[j]", "e *= j", "e *= a[j] + 1",
            "e /= a[j]"}},
          {"print_first", {"o", "e"}},
          {"print_second", {"e", "o"}},
      });

  a.suite.exec_options.max_steps = 300000;
  a.suite.method = "assignment1";
  a.suite.inputs = {
      {Value::IntArray({})},
      {Value::IntArray({3})},
      {Value::IntArray({3, 5, 2, 4})},
      {Value::IntArray({1, 2, 3, 4, 5, 6})},
      {Value::IntArray({2, 7, 1, 8, 2, 8, 1})},
  };

  MethodSpec m;
  m.expected_name = "assignment1";
  m.patterns = {Use("odd-positions"),  Use("even-positions"),
                Use("cond-accum-add"), Use("cond-accum-mul"),
                Use("init-one"),       Use("assign-print", 2)};
  m.constraints = {
      Contain("odd-access-is-summed", "odd-positions", 5,
              "c \\+= s\\[x\\]$|c = c \\+ s\\[x\\]$",
              {"cond-accum-add"},
          "The odd positions you access are exactly the ones you sum",
          "You should sum exactly the accessed odd position and nothing "
          "else ({c} += {s}[{x}])"),
      Contain("even-access-is-multiplied", "even-positions", 5,
              "d \\*= es\\[ex\\]$|d = d \\* es\\[ex\\]$",
              {"cond-accum-mul"},
          "The even positions you access are exactly the ones you multiply",
          "You should multiply exactly the accessed even position and "
          "nothing else ({d} *= {es}[{ex}])"),
      MakeEdgeConstraint(
          "sum-is-printed", "cond-accum-add", 3, "assign-print", 1,
          pdg::EdgeType::kData, "The odd-position sum {c} is printed",
          "The odd-position sum should be printed to console"),
      MakeEdgeConstraint(
          "product-is-printed", "cond-accum-mul", 3, "assign-print", 1,
          pdg::EdgeType::kData, "The even-position product {d} is printed",
          "The even-position product should be printed to console"),
  };
  a.spec.id = a.id;
  a.spec.title = a.title;
  a.spec.methods.push_back(std::move(m));
  return a;
}

// ---------------------------------------------------------------------------
// esc-LAB-3-P1-V1 — print n with n! <= k < (n+1)!.
// ---------------------------------------------------------------------------

Assignment BuildP1V1() {
  Assignment a;
  a.id = "esc-LAB-3-P1-V1";
  a.title = "Factorial bound search";
  a.description =
      "Print to console the number n such that n! <= k < (n+1)! taking the "
      "number k as input.";
  a.paper_space_size = 442368;
  a.paper_pattern_count = 7;
  a.paper_constraint_count = 5;
  a.paper_discrepancies = 8;

  a.generator = SubmissionTemplate(
      "void lab3p1v1(int k) {\n"
      "  int ${init_n};\n"
      "  long ${init_f};\n"
      "  while (${bound}) {\n"
      "    ${inc};\n"
      "    ${mul};\n"
      "    ${extra}\n"
      "  }\n"
      "  ${guard}\n"
      "  ${print_call};\n"
      "  ${tail}\n"
      "}\n",
      {
          {"init_n", {"n = 0", "n = 1", "n = 2", "n = -1"}},
          {"init_f", {"f = 1", "f = 0", "f = 2", "f = k"}},
          {"bound",
           {"f * (n + 1) <= k", "f * (n + 1) - 1 < k", "f * n <= k",
            "f * (n + 1) < k"}},
          {"inc", {"n++", "n = n + 1", "n += 2", "n--"}},
          {"mul", {"f *= n", "f = f * n", "f *= n + 1", "f += n"}},
          {"extra",
           {"", "if (f < 0) break;", "if (n > 100) break;",
            "if (n == -999) break;"}},
          {"p_expr", {"n", "f", "n + 1", "n - 1"}},
          {"print_call",
           {"System.out.println(${p_expr})", "System.out.print(${p_expr})",
            "System.out.println(\"n = \" + ${p_expr})"}},
          {"guard", {"", "if (n < 0) n = 0;", "n = 0;"}},
          {"tail", {"", "int unused = 9;", "int extra2 = 9;"}},
      });

  a.suite.exec_options.max_steps = 300000;
  a.suite.method = "lab3p1v1";
  a.suite.inputs = {{Value::Int(1)},  {Value::Int(2)},   {Value::Int(6)},
                    {Value::Int(7)},  {Value::Int(24)},  {Value::Int(100)},
                    {Value::Int(719)}, {Value::Int(720)}};

  MethodSpec m;
  m.expected_name = "lab3p1v1";
  m.patterns = {Use("bound-search"), Use("factorial-step"),
                Use("init-zero"),    Use("init-one"),
                Use("counter-loop"), Use("assign-print"),
                Use("double-increment", 0)};
  m.constraints = {
      MakeEqualityConstraint(
          "search-inc-is-counter", "bound-search", 2, "counter-loop", 2,
          "The search loop advances your counter {ctr}",
          "The search loop should advance the answer counter"),
      Contain("print-shows-counter-exactly", "assign-print", 1,
              "print(ln)?\\(ctr\\)$", {"counter-loop"},
          "The console output is exactly the counter",
          "Print exactly the counter value, nothing else"),
      MakeEdgeConstraint(
          "one-feeds-product", "init-one", 0, "factorial-step", 2,
          pdg::EdgeType::kData,
          "The running factorial {f} starts from your 1-initialization",
          "The running factorial should start from a variable initialized "
          "to 1"),
      MakeEdgeConstraint(
          "counter-is-printed", "counter-loop", 2, "assign-print", 1,
          pdg::EdgeType::kData, "The final counter value {ctr} is printed",
          "The printed value should be the counter the loop computed"),
      Contain("bound-uses-next-factorial", "bound-search", 1,
              "f \\* \\(bx \\+ 1\\) <= k", {"factorial-step"},
              "Your loop checks (n+1)! <= k exactly",
              "The loop bound should compare {f} * ({bx} + 1) against {k} "
              "— check n! of the *next* index"),
  };
  a.spec.id = a.id;
  a.spec.title = a.title;
  a.spec.methods.push_back(std::move(m));
  return a;
}

// ---------------------------------------------------------------------------
// esc-LAB-3-P2-V1 — same bound search on the Fibonacci sequence.
// ---------------------------------------------------------------------------

Assignment BuildP2V1() {
  Assignment a;
  a.id = "esc-LAB-3-P2-V1";
  a.title = "Fibonacci bound search";
  a.description =
      "Print to console the number n such that fib(n) <= k < fib(n+1), "
      "with the Fibonacci sequence 1, 1, 2, 3, ...";
  a.paper_space_size = 7077888;
  a.paper_pattern_count = 8;
  a.paper_constraint_count = 13;
  a.paper_discrepancies = 592;

  a.generator = SubmissionTemplate(
      "void lab3p2v1(int k) {\n"
      "  int ${init_n};\n"
      "  long ${init_a};\n"
      "  long ${init_b};\n"
      "  while (${bound}) {\n"
      "    long ${t_stmt};\n"
      "    ${rot_a};\n"
      "    ${rot_b};\n"
      "    ${inc};\n"
      "    ${extra}\n"
      "  }\n"
      "  ${guard}\n"
      "  ${print_call};\n"
      "}\n",
      {
          {"init_n", {"n = 1", "n = 0", "n = 2", "n = -1"}},
          {"init_a", {"a = 1", "a = 0", "a = 2", "a = k"}},
          {"init_b", {"b = 1", "b = 0", "b = 2", "b = a + 1"}},
          {"bound", {"b <= k", "b - 1 < k", "b < k", "a <= k"}},
          {"t_stmt", {"t = a + b", "t = b + a", "t = a + b + 1", "t = a - b"}},
          {"rot_a", {"a = b", "a = t", "a = a", "a = b + 0"}},
          {"rot_b", {"b = t", "b = a", "b = t + 0", "b = b"}},
          {"inc", {"n++", "n = n + 1", "n += 2", "n--"}},
          {"p_expr", {"n", "b", "n + 1", "n - 1"}},
          {"print_call",
           {"System.out.println(${p_expr})", "System.out.print(${p_expr})",
            "System.out.println(\"n = \" + ${p_expr})"}},
          {"extra", {"", "if (b < 0) break;", "if (b == -1) break;"}},
          {"guard", {"", "if (n < 0) n = 0;", "n = 0;"}},
      });

  a.suite.exec_options.max_steps = 300000;
  a.suite.method = "lab3p2v1";
  a.suite.inputs = {{Value::Int(1)},  {Value::Int(2)},  {Value::Int(3)},
                    {Value::Int(5)},  {Value::Int(7)},  {Value::Int(21)},
                    {Value::Int(100)}, {Value::Int(10946)}};

  MethodSpec m;
  m.expected_name = "lab3p2v1";
  m.patterns = {Use("fib-step"),        Use("bound-search"),
                Use("init-one", 3),     Use("counter-loop"),
                Use("assign-print"),    Use("double-increment", 0),
                Use("membership-count", 0), Use("digit-extract", 0)};
  m.constraints = {
      MakeEqualityConstraint(
          "search-inc-is-counter", "bound-search", 2, "counter-loop", 2,
          "The search loop advances your counter {ctr}",
          "The search loop should advance the answer counter"),
      MakeEqualityConstraint(
          "fib-loop-is-search-loop", "fib-step", 0, "bound-search", 1,
          "The Fibonacci rotation runs inside the bound-search loop",
          "The Fibonacci rotation should run inside the bound-search loop"),
      MakeEqualityConstraint(
          "fib-loop-drives-counter", "fib-step", 0, "counter-loop", 1,
          "The counter advances once per Fibonacci step",
          "The counter should advance once per Fibonacci step"),
      MakeEqualityConstraint(
          "search-loop-drives-counter", "bound-search", 1, "counter-loop",
          1, "The counter advances once per search-loop iteration",
          "The counter should advance once per search-loop iteration"),
      MakeEdgeConstraint(
          "one-feeds-bound", "init-one", 0, "bound-search", 1,
          pdg::EdgeType::kData,
          "The bound check starts from a sequence value initialized to 1",
          "The bound check should start from a sequence value initialized "
          "to 1"),
      MakeEdgeConstraint(
          "one-feeds-sum", "init-one", 0, "fib-step", 1,
          pdg::EdgeType::kData,
          "The Fibonacci sum reads a value initialized to 1",
          "The Fibonacci sum should read a value initialized to 1"),
      MakeEdgeConstraint(
          "one-feeds-counter", "init-one", 0, "counter-loop", 2,
          pdg::EdgeType::kData,
          "The counter starts from its 1-initialization",
          "The counter should be initialized to 1 (fib(1) = 1)"),
      MakeEdgeConstraint(
          "counter-is-printed", "counter-loop", 2, "assign-print", 1,
          pdg::EdgeType::kData, "The final counter value {ctr} is printed",
          "The printed value should be the counter the loop computed"),
      MakeEdgeConstraint(
          "counter-init-feeds-print-def", "counter-loop", 0,
          "assign-print", 0, pdg::EdgeType::kData,
          "The printed value descends from the counter initialization",
          "The printed value should descend from the counter "
          "initialization"),
      Contain("bound-uses-next-fib", "bound-search", 1, "fb <= k",
              {"fib-step"}, "Your loop checks fib(n+1) <= k exactly",
              "The loop bound should compare the *next* Fibonacci value "
              "against {k}"),
      Contain("print-shows-counter", "assign-print", 1,
              "print(ln)?\\(ctr\\)$", {"counter-loop"},
              "The console output shows the counter",
              "Print the counter, not an intermediate value"),
      Contain("search-advances-counter", "bound-search", 2,
              "ctr\\+\\+|ctr = ctr \\+ 1|ctr \\+= 1", {"counter-loop"},
              "The search loop advances the counter by one",
              "The search loop should advance the counter by exactly one"),
      Contain("print-shows-search-index", "assign-print", 1,
              "print(ln)?\\(bx\\)$", {"bound-search"},
              "The console output shows the search index",
              "Print the search index"),
  };
  a.spec.id = a.id;
  a.spec.title = a.title;
  a.spec.methods.push_back(std::move(m));
  return a;
}

// ---------------------------------------------------------------------------
// esc-LAB-3-P2-V2 — "special number": sum of cubes of digits equals number.
// ---------------------------------------------------------------------------

Assignment BuildP2V2() {
  Assignment a;
  a.id = "esc-LAB-3-P2-V2";
  a.title = "Special number (sum of cubes of digits)";
  a.description =
      "A number is special when the sum of cubes of its digits is equal to "
      "the number itself. Print whether k is special.";
  a.paper_space_size = 144;
  a.paper_pattern_count = 4;
  a.paper_constraint_count = 5;
  a.paper_discrepancies = 0;

  a.generator = SubmissionTemplate(
      "void lab3p2v2(int k) {\n"
      "  int n = k;\n"
      "  int sum = 0;\n"
      "  while (${bound}) {\n"
      "    int d = ${digit};\n"
      "    ${accum};\n"
      "    n = n / 10;\n"
      "  }\n"
      "  ${print};\n"
      "}\n",
      {
          {"digit", {"n % 10", "n % 100", "n / 10", "n % 10 + 1"}},
          {"accum",
           {"sum += d * d * d", "sum = sum + d * d * d", "sum += d * d",
            "sum += d"}},
          {"bound", {"n > 0", "n != 0", "n >= 1"}},
          {"print",
           {"System.out.println(sum == k)", "System.out.print(sum == k)",
            "System.out.println(sum)"}},
      });

  a.suite.exec_options.max_steps = 300000;
  a.suite.method = "lab3p2v2";
  a.suite.inputs = {{Value::Int(153)}, {Value::Int(7)},   {Value::Int(371)},
                    {Value::Int(12)},  {Value::Int(100)}, {Value::Int(407)},
                    {Value::Int(1)},   {Value::Int(9474)}};

  MethodSpec m;
  m.expected_name = "lab3p2v2";
  m.patterns = {Use("digit-extract"), Use("cube-accum"), Use("init-zero"),
                Use("assign-print")};
  m.constraints = {
      MakeEqualityConstraint(
          "digit-feeds-cubes", "digit-extract", 1, "cube-accum", 0,
          "The digit you extract is the one you cube",
          "The digit you cube should be the one extracted with % 10"),
      MakeEdgeConstraint(
          "zero-feeds-sum", "init-zero", 0, "cube-accum", 1,
          pdg::EdgeType::kData,
          "The cube sum {cs} starts from your 0-initialization",
          "The cube sum should start from 0"),
      MakeEdgeConstraint(
          "sum-reaches-print", "cube-accum", 1, "assign-print", 1,
          pdg::EdgeType::kData, "The cube sum reaches the console output",
          "The cube sum should reach the console output"),
      Contain("print-compares-sum", "assign-print", 1, "cs ==",
              {"cube-accum"},
              "You print the comparison of the cube sum with the input",
              "Print whether the cube sum equals the input number"),
      Contain("digit-is-mod-ten", "digit-extract", 1, "cd =",
              {"cube-accum"}, "The current digit is stored before cubing",
              "Store the current digit (n % 10) before cubing it"),
  };
  a.spec.id = a.id;
  a.spec.title = a.title;
  a.spec.methods.push_back(std::move(m));
  return a;
}

// ---------------------------------------------------------------------------
// esc-LAB-3-P3-V1 — difference of a positive number and its reverse.
// ---------------------------------------------------------------------------

Assignment BuildP3V1() {
  Assignment a;
  a.id = "esc-LAB-3-P3-V1";
  a.title = "Difference of a number and its reverse";
  a.description =
      "Find the difference of a positive number and its reverse and print "
      "it to console.";
  a.paper_space_size = 10368;
  a.paper_pattern_count = 7;
  a.paper_constraint_count = 6;
  a.paper_discrepancies = 1;

  a.generator = SubmissionTemplate(
      "void lab3p3v1(int k) {\n"
      "  int n = k;\n"
      "  ${pre}\n"
      "  int ${init_rev};\n"
      "  while (${bound}) {\n"
      "    rev = ${rev_op};\n"
      "    n = ${n_op};\n"
      "    ${loop_extra}\n"
      "  }\n"
      "  ${print};\n"
      "  ${tail}\n"
      "}\n",
      {
          {"init_rev", {"rev = 0", "rev = 1", "rev = k"}},
          {"bound", {"n > 0", "n != 0", "n >= 1"}},
          {"rev_op",
           {"rev * 10 + n % 10", "rev * 10 + n % 10 + 0", "rev + n % 10",
            "rev * 10 + n / 10"}},
          {"n_op", {"n / 10", "(n - n % 10) / 10", "n / 100", "n - 10"}},
          {"loop_extra", {"", "if (rev < 0) break;", "if (n < 0) break;"}},
          {"print",
           {"System.out.println(k - rev)", "System.out.print(k - rev)",
            "System.out.println(rev - k)", "System.out.println(k)"}},
          {"tail", {"", "int unused = 9;"}},
          {"pre", {"", "int digits = 9;", "int tmp = 9;"}},
      });

  a.suite.exec_options.max_steps = 300000;
  a.suite.method = "lab3p3v1";
  a.suite.inputs = {{Value::Int(123)}, {Value::Int(7)},   {Value::Int(100)},
                    {Value::Int(54)},  {Value::Int(9000)}, {Value::Int(11)},
                    {Value::Int(120)}};

  MethodSpec m;
  m.expected_name = "lab3p3v1";
  m.patterns = {Use("digit-extract"),      Use("reverse-build"),
                Use("init-zero"),          Use("assign-print"),
                Use("equality-check", 0),  Use("cube-accum", 0),
                Use("double-increment", 0)};
  m.constraints = {
      MakeEqualityConstraint(
          "reverse-extracts-digit", "digit-extract", 1, "reverse-build", 1,
          "The reverse update consumes the extracted digit",
          "The reverse update should consume the digit extracted with "
          "% 10"),
      MakeEqualityConstraint(
          "same-digit-loop", "digit-extract", 0, "reverse-build", 0,
          "The reverse is built inside the digit loop",
          "Build the reverse inside the digit loop"),
      MakeEdgeConstraint(
          "zero-feeds-reverse", "init-zero", 0, "reverse-build", 1,
          pdg::EdgeType::kData, "The reverse starts from 0",
          "The reverse should start from 0"),
      MakeEdgeConstraint(
          "reverse-reaches-print", "reverse-build", 1, "assign-print", 1,
          pdg::EdgeType::kData, "The reverse reaches the console output",
          "The reverse should reach the console output"),
      Contain("print-shows-difference", "assign-print", 1, "- rv\\)",
              {"reverse-build"},
              "You print the difference involving the reverse",
              "Print the difference between the number and its reverse"),
      Contain("reverse-formula", "reverse-build", 1,
              "rv = rv \\* 10 \\+ dn % 10", {"digit-extract"},
              "The reverse is rebuilt as rev * 10 + digit",
              "Rebuild the reverse as rev * 10 + (number % 10)"),
  };
  a.spec.id = a.id;
  a.spec.title = a.title;
  a.spec.methods.push_back(std::move(m));
  return a;
}

// ---------------------------------------------------------------------------
// esc-LAB-3-P3-V2 — count factorial numbers in [n, m].
// ---------------------------------------------------------------------------

Assignment BuildP3V2() {
  Assignment a;
  a.id = "esc-LAB-3-P3-V2";
  a.title = "Count factorial numbers in a range";
  a.description =
      "Given numbers n and m, print to console the count of factorial "
      "numbers in [n, m].";
  a.paper_space_size = 589824;
  a.paper_pattern_count = 8;
  a.paper_constraint_count = 10;
  a.paper_discrepancies = 4;

  a.generator = SubmissionTemplate(
      "void lab3p3v2(int n, int m) {\n"
      "  int ${init_count};\n"
      "  long ${init_f};\n"
      "  int ${init_i};\n"
      "  while (${bound}) {\n"
      "    if (${member})\n"
      "      ${count_op};\n"
      "    ${inc};\n"
      "    ${mul};\n"
      "  }\n"
      "  ${print};\n"
      "  ${tail}\n"
      "}\n",
      {
          {"init_count", {"count = 0", "count = 1", "count = -1",
                          "count = n"}},
          {"init_f", {"f = 1", "f = 0", "f = 2", "f = n"}},
          {"init_i", {"i = 1", "i = 0", "i = 2", "i = -1"}},
          {"bound", {"f <= m", "f < m", "f - 1 < m", "f <= m - 1"}},
          {"member", {"f >= n", "f > n - 1", "f > n", "f >= n + 1"}},
          {"count_op",
           {"count += 1", "count++", "count = count + 1", "count += 2"}},
          {"inc", {"i++", "i = i + 1", "i += 2", "i--"}},
          {"mul", {"f *= i", "f = f * i", "f *= i + 1", "f += i"}},
          {"print",
           {"System.out.println(count)", "System.out.print(count)",
            "System.out.println(count + 1)"}},
          {"tail", {"", "int unused = 9;", "int extra = 9;"}},
      });

  a.suite.exec_options.max_steps = 300000;
  a.suite.method = "lab3p3v2";
  a.suite.inputs = {
      {Value::Int(1), Value::Int(15)}, {Value::Int(2), Value::Int(2)},
      {Value::Int(3), Value::Int(730)}, {Value::Int(1), Value::Int(1)},
      {Value::Int(7), Value::Int(23)}, {Value::Int(1), Value::Int(5040)},
      {Value::Int(25), Value::Int(100)}};

  MethodSpec m;
  m.expected_name = "lab3p3v2";
  m.patterns = {Use("factorial-step"),     Use("membership-count"),
                Use("range-loop"),         Use("init-zero"),
                Use("init-one", 2),        Use("counter-loop", 2),
                Use("assign-print"),       Use("double-increment", 0)};
  m.constraints = {
      MakeEqualityConstraint(
          "member-inc-is-counted", "membership-count", 2, "counter-loop",
          2, "Each member bumps the running count",
          "Each member should bump the running count exactly once"),
      MakeEqualityConstraint(
          "factorial-loop-is-range-loop", "factorial-step", 0,
          "range-loop", 1,
          "The factorials grow inside the range-bounded loop",
          "Grow the factorials inside the range-bounded loop"),
      MakeEdgeConstraint(
          "zero-feeds-count", "init-zero", 0, "membership-count", 2,
          pdg::EdgeType::kData, "The member count starts from 0",
          "The member count should start from 0"),
      MakeEdgeConstraint(
          "one-feeds-product", "init-one", 0, "factorial-step", 2,
          pdg::EdgeType::kData, "The running factorial starts from 1",
          "The running factorial should start from 1"),
      MakeEdgeConstraint(
          "one-feeds-member-check", "init-one", 0, "membership-count", 1,
          pdg::EdgeType::kData,
          "The membership check sees the initial factorial",
          "The first factorial (1) should also be checked for membership"),
      MakeEdgeConstraint(
          "one-feeds-range-check", "init-one", 0, "range-loop", 1,
          pdg::EdgeType::kData,
          "The range check sees the initial factorial",
          "The range check should see the initial factorial"),
      MakeEdgeConstraint(
          "count-is-printed", "membership-count", 2, "assign-print", 1,
          pdg::EdgeType::kData, "The member count is printed",
          "Print the member count"),
      Contain("member-check-compares-factorial", "membership-count", 1,
              "f >= mn$|f > mn", {"factorial-step"},
              "You compare the running factorial against the lower bound",
              "Compare the running factorial against the lower bound n"),
      Contain("range-check-compares-factorial", "range-loop", 1,
              "f <= rm$|f < rm", {"factorial-step"},
              "You compare the running factorial against the upper bound",
              "Compare the running factorial against the upper bound m"),
      Contain("print-shows-count", "assign-print", 1,
              "print(ln)?\\(mc\\)$",
              {"membership-count"}, "The console output shows the count",
              "Print the count, not an intermediate value"),
  };
  a.spec.id = a.id;
  a.spec.title = a.title;
  a.spec.methods.push_back(std::move(m));
  return a;
}

// ---------------------------------------------------------------------------
// esc-LAB-3-P4-V1 — palindrome check.
// ---------------------------------------------------------------------------

Assignment BuildP4V1() {
  Assignment a;
  a.id = "esc-LAB-3-P4-V1";
  a.title = "Palindrome check";
  a.description = "Check if a given number k is a palindrome.";
  a.paper_space_size = 13824;
  a.paper_pattern_count = 7;
  a.paper_constraint_count = 6;
  a.paper_discrepancies = 1;

  a.generator = SubmissionTemplate(
      "void lab3p4v1(int k) {\n"
      "  int n = k;\n"
      "  ${pre}\n"
      "  int ${init_rev};\n"
      "  while (${bound}) {\n"
      "    rev = ${rev_op};\n"
      "    n = ${n_op};\n"
      "    ${loop_extra}\n"
      "  }\n"
      "  ${print};\n"
      "  ${tail}\n"
      "}\n",
      {
          {"init_rev", {"rev = 0", "rev = 1", "rev = k", "rev = -1"}},
          {"bound", {"n > 0", "n != 0", "n >= 1"}},
          {"rev_op",
           {"rev * 10 + n % 10", "rev * 10 + n % 10 + 0", "rev + n % 10",
            "rev * 10 + n / 10"}},
          {"n_op", {"n / 10", "(n - n % 10) / 10", "n / 100", "n - 10"}},
          {"loop_extra", {"", "if (rev < 0) break;", "if (n < 0) break;"}},
          {"print",
           {"System.out.println(rev == k)", "System.out.print(rev == k)",
            "System.out.println(k == rev)", "System.out.println(rev)"}},
          {"tail", {"", "int unused = 9;"}},
          {"pre", {"", "int digits = 9;", "int tmp = 9;"}},
      });

  a.suite.exec_options.max_steps = 300000;
  a.suite.method = "lab3p4v1";
  a.suite.inputs = {{Value::Int(121)},  {Value::Int(123)}, {Value::Int(7)},
                    {Value::Int(1221)}, {Value::Int(10)},  {Value::Int(11)},
                    {Value::Int(12321)}};

  MethodSpec m;
  m.expected_name = "lab3p4v1";
  m.patterns = {Use("digit-extract"),     Use("reverse-build"),
                Use("init-zero"),         Use("equality-check"),
                Use("assign-print"),      Use("cube-accum", 0),
                Use("double-increment", 0)};
  m.constraints = {
      MakeEqualityConstraint(
          "reverse-extracts-digit", "digit-extract", 1, "reverse-build", 1,
          "The reverse update consumes the extracted digit",
          "The reverse update should consume the digit extracted with "
          "% 10"),
      MakeEdgeConstraint(
          "zero-feeds-reverse", "init-zero", 0, "reverse-build", 1,
          pdg::EdgeType::kData, "The reverse starts from 0",
          "The reverse should start from 0"),
      MakeEdgeConstraint(
          "reverse-reaches-print", "reverse-build", 1, "assign-print", 1,
          pdg::EdgeType::kData, "The reverse reaches the console output",
          "The reverse should reach the console output"),
      MakeEqualityConstraint(
          "comparison-is-printed", "equality-check", 1, "assign-print", 1,
          "You print the palindrome comparison",
          "Print the comparison of the reverse against the input"),
      Contain("compare-reverse-to-input", "equality-check", 1,
              "rv == eqk|eqk == rv", {"reverse-build"},
              "You compare the reverse against the input",
              "Compare the reverse against the input number"),
      Contain("reverse-formula", "reverse-build", 1,
              "rv = rv \\* 10 \\+ dn % 10", {"digit-extract"},
              "The reverse is rebuilt as rev * 10 + digit",
              "Rebuild the reverse as rev * 10 + (number % 10)"),
  };
  a.spec.id = a.id;
  a.spec.title = a.title;
  a.spec.methods.push_back(std::move(m));
  return a;
}

// ---------------------------------------------------------------------------
// esc-LAB-3-P4-V2 — count Fibonacci numbers in [n, m].
// ---------------------------------------------------------------------------

Assignment BuildP4V2() {
  Assignment a;
  a.id = "esc-LAB-3-P4-V2";
  a.title = "Count Fibonacci numbers in a range";
  a.description =
      "Given numbers n and m, print to console the count of Fibonacci "
      "numbers in [n, m] (sequence 1, 1, 2, 3, ...).";
  a.paper_space_size = 9437184;
  a.paper_pattern_count = 9;
  a.paper_constraint_count = 14;
  a.paper_discrepancies = 248;

  a.generator = SubmissionTemplate(
      "void lab3p4v2(int n, int m) {\n"
      "  int ${init_count};\n"
      "  long ${init_a};\n"
      "  long ${init_b};\n"
      "  int i = 1;\n"
      "  while (${bound}) {\n"
      "    if (${member})\n"
      "      ${count_op};\n"
      "    long ${t_stmt};\n"
      "    ${rot_a};\n"
      "    ${rot_b};\n"
      "    ${inc};\n"
      "  }\n"
      "  ${print};\n"
      "  ${tail}\n"
      "}\n",
      {
          {"init_count", {"count = 0", "count = 1", "count = -1",
                          "count = n"}},
          {"init_a", {"a = 1", "a = 0", "a = 2", "a = n"}},
          {"init_b", {"b = 1", "b = 0", "b = 2", "b = a + 1"}},
          {"bound", {"a <= m", "a < m", "a - 1 < m", "a <= m - 1"}},
          {"member", {"a >= n", "a > n - 1", "a > n", "a >= n + 1"}},
          {"count_op",
           {"count += 1", "count++", "count = count + 1", "count += 2"}},
          {"t_stmt", {"t = a + b", "t = b + a", "t = a + b + 1", "t = a - b"}},
          {"rot_a", {"a = b", "a = t", "a = a", "a = b + 0"}},
          {"rot_b", {"b = t", "b = a", "b = t + 0", "b = b"}},
          {"inc", {"i++", "i = i + 1", "i += 2", "i--"}},
          {"print",
           {"System.out.println(count)", "System.out.print(count)",
            "System.out.println(count + 1)"}},
          {"tail", {"", "int unused = 9;", "int extra = 9;"}},
      });

  a.suite.exec_options.max_steps = 300000;
  a.suite.method = "lab3p4v2";
  a.suite.inputs = {
      {Value::Int(1), Value::Int(5)},   {Value::Int(2), Value::Int(2)},
      {Value::Int(3), Value::Int(100)}, {Value::Int(1), Value::Int(1)},
      {Value::Int(7), Value::Int(23)},  {Value::Int(10), Value::Int(10946)},
      {Value::Int(4), Value::Int(4)}};

  MethodSpec m;
  m.expected_name = "lab3p4v2";
  m.patterns = {Use("fib-step"),           Use("membership-count"),
                Use("range-loop"),         Use("init-zero"),
                Use("init-one", 3),        Use("counter-loop", 2),
                Use("assign-print"),       Use("double-increment", 0),
                Use("factorial-step", 0)};
  m.constraints = {
      MakeEqualityConstraint(
          "member-inc-is-counted", "membership-count", 2, "counter-loop",
          2, "Each member bumps the running count",
          "Each member should bump the running count exactly once"),
      MakeEqualityConstraint(
          "fib-loop-is-range-loop", "fib-step", 0, "range-loop", 1,
          "The Fibonacci values grow inside the range-bounded loop",
          "Grow the Fibonacci values inside the range-bounded loop"),
      MakeEqualityConstraint(
          "fib-loop-drives-counter", "fib-step", 0, "counter-loop", 1,
          "A counter advances once per Fibonacci step",
          "A counter should advance once per Fibonacci step"),
      MakeEdgeConstraint(
          "zero-feeds-count", "init-zero", 0, "membership-count", 2,
          pdg::EdgeType::kData, "The member count starts from 0",
          "The member count should start from 0"),
      MakeEdgeConstraint(
          "one-feeds-sum", "init-one", 0, "fib-step", 1,
          pdg::EdgeType::kData,
          "The Fibonacci sum reads a value initialized to 1",
          "The Fibonacci pair should start from 1, 1"),
      MakeEdgeConstraint(
          "one-feeds-range-check", "init-one", 0, "range-loop", 1,
          pdg::EdgeType::kData,
          "The range check sees the initial Fibonacci value",
          "The range check should see the initial Fibonacci value (1)"),
      MakeEdgeConstraint(
          "one-feeds-member-check", "init-one", 0, "membership-count", 1,
          pdg::EdgeType::kData,
          "The membership check sees the initial Fibonacci value",
          "fib(1) = 1 should also be checked for membership"),
      MakeEdgeConstraint(
          "one-feeds-counter", "init-one", 0, "counter-loop", 2,
          pdg::EdgeType::kData, "The counter starts from 1",
          "Start the sequence index at 1, not 0 (the paper's very "
          "discrepancy class)"),
      MakeEdgeConstraint(
          "count-is-printed", "membership-count", 2, "assign-print", 1,
          pdg::EdgeType::kData, "The member count is printed",
          "Print the member count"),
      Contain("member-check-compares-fib", "membership-count", 1,
              "fa >= mn$|fa > mn", {"fib-step"},
              "You compare the running Fibonacci value against the lower "
              "bound",
              "Compare the running Fibonacci value against the lower "
              "bound n"),
      Contain("range-check-compares-fib", "range-loop", 1,
              "fa <= rm$|fa < rm", {"fib-step"},
              "You compare the running Fibonacci value against the upper "
              "bound",
              "Compare the running Fibonacci value against the upper "
              "bound m"),
      Contain("print-shows-count", "assign-print", 1,
              "print(ln)?\\(mc\\)$",
              {"membership-count"}, "The console output shows the count",
              "Print the count, not an intermediate value"),
      MakeEqualityConstraint(
          "count-guarded-by-membership", "membership-count", 1,
          "counter-loop", 1,
          "The count increment is guarded by the membership check",
          "Guard the count increment with the membership check"),
      MakeEqualityConstraint(
          "range-loop-drives-counter", "range-loop", 1, "counter-loop", 1,
          "A counter advances once per range-loop iteration",
          "A counter should advance once per range-loop iteration"),
  };
  a.spec.id = a.id;
  a.spec.title = a.title;
  a.spec.methods.push_back(std::move(m));
  return a;
}

// ---------------------------------------------------------------------------
// mitx-derivatives — derivative coefficients of a polynomial.
// ---------------------------------------------------------------------------

Assignment BuildDerivatives() {
  Assignment a;
  a.id = "mitx-derivatives";
  a.title = "Polynomial derivatives";
  a.description =
      "Compute the derivative of an input polynomial represented by an "
      "array of coefficients; print the derivative coefficients.";
  a.paper_space_size = 576;
  a.paper_pattern_count = 3;
  a.paper_constraint_count = 4;
  a.paper_discrepancies = 0;

  a.generator = SubmissionTemplate(
      "void derivatives(double[] a) {\n"
      "  double[] b = new double[${alloc}];\n"
      "  for (int i = ${d_start}; ${d_bound}; i++)\n"
      "    ${shift};\n"
      "  for (int j = 0; ${p_bound}; j++)\n"
      "    System.out.println(b[j]);\n"
      "}\n",
      {
          {"alloc",
           {"a.length - 1", "a.length", "a.length + 1", "a.length - 2"}},
          {"d_start", {"1", "0", "2"}},
          {"d_bound",
           {"i < a.length", "i <= a.length", "i < a.length - 1",
            "i < b.length"}},
          {"shift",
           {"b[i - 1] = a[i] * i", "b[i] = a[i] * i", "b[i - 1] = a[i]",
            "b[i - 1] = a[i] * (i - 1)"}},
          {"p_bound", {"j < b.length", "j <= b.length", "j < a.length"}},
      });

  a.suite.exec_options.max_steps = 300000;
  a.suite.method = "derivatives";
  a.suite.inputs = {
      {Value::DoubleArray({3.0, 2.0})},
      {Value::DoubleArray({1.0, 4.0, 9.0})},
      {Value::DoubleArray({5.0, 0.0, 1.0, 2.0})},
      {Value::DoubleArray({-1.0, 2.5, -3.0, 0.5, 4.0})},
  };

  MethodSpec m;
  m.expected_name = "derivatives";
  m.patterns = {Use("derivative-shift"), Use("counter-loop", 2),
                Use("assign-print", 3)};
  m.constraints = {
      MakeEdgeConstraint(
          "derivative-is-printed", "derivative-shift", 2, "assign-print",
          1, pdg::EdgeType::kData,
          "The derivative coefficients reach the console output",
          "The derivative coefficients should be printed"),
      Contain("print-loop-bounded", "counter-loop", 1,
              "ctr < db\\.length$", {"derivative-shift"},
              "The print loop visits exactly the derivative coefficients",
              "The print loop must visit exactly {db}.length coefficients"),
      Contain("print-shows-derivative", "assign-print", 1,
              "print(ln)?\\(db", {"derivative-shift"},
              "The console output shows the derivative array",
              "Print the derivative array elements"),
      Contain("shift-target-index", "derivative-shift", 2,
              "db\\[ctr - 1\\]", {"counter-loop"},
              "Term i lands at slot i - 1",
              "The derivative of term i must land at slot i - 1"),
  };
  a.spec.id = a.id;
  a.spec.title = a.title;
  a.spec.methods.push_back(std::move(m));
  return a;
}

// ---------------------------------------------------------------------------
// mitx-polynomials — evaluate a polynomial at a value.
// ---------------------------------------------------------------------------

Assignment BuildPolynomials() {
  Assignment a;
  a.id = "mitx-polynomials";
  a.title = "Polynomial evaluation";
  a.description =
      "Compute the value of a polynomial (array of coefficients) at a "
      "given value x; print the result.";
  a.paper_space_size = 768;
  a.paper_pattern_count = 4;
  a.paper_constraint_count = 4;
  a.paper_discrepancies = 0;

  a.generator = SubmissionTemplate(
      "void polynomial(double[] a, double x) {\n"
      "  double ${init_r};\n"
      "  for (int i = ${p_start}; ${p_bound}; ${p_inc})\n"
      "    ${term};\n"
      "  System.out.println(r);\n"
      "}\n",
      {
          {"init_r", {"r = 0.0", "r = 1.0", "r = x", "r = -1.0"}},
          {"p_start", {"0", "1", "2", "-1"}},
          {"p_bound",
           {"i < a.length", "i <= a.length", "i < a.length - 1",
            "i < a.length + 1"}},
          {"term",
           {"r += a[i] * Math.pow(x, i)", "r = r + a[i] * Math.pow(x, i)",
            "r += a[i] * Math.pow(i, x)", "r += a[i] * x"}},
          {"p_inc", {"i++", "i += 1", "i += 2"}},
      });

  a.suite.exec_options.max_steps = 300000;
  a.suite.method = "polynomial";
  a.suite.inputs = {
      {Value::DoubleArray({3.0, 2.0}), Value::Double(2.0)},
      {Value::DoubleArray({1.0, 0.0, 1.0}), Value::Double(3.0)},
      {Value::DoubleArray({5.0}), Value::Double(10.0)},
      {Value::DoubleArray({-1.0, 2.0, -3.0, 4.0}), Value::Double(0.5)},
  };

  MethodSpec m;
  m.expected_name = "polynomial";
  m.patterns = {Use("poly-eval"), Use("init-zero", 2),
                Use("counter-loop"), Use("assign-print")};
  m.constraints = {
      MakeEdgeConstraint(
          "zero-feeds-result", "init-zero", 0, "poly-eval", 1,
          pdg::EdgeType::kData, "The result accumulator starts from 0",
          "The result accumulator should start from 0"),
      MakeEdgeConstraint(
          "result-is-printed", "poly-eval", 1, "assign-print", 1,
          pdg::EdgeType::kData, "The evaluated value reaches the console",
          "Print the evaluated polynomial value"),
      MakeEqualityConstraint(
          "eval-loop-is-counter-loop", "poly-eval", 0, "counter-loop", 1,
          "The evaluation loop is driven by a unit counter",
          "Drive the evaluation loop with a unit counter over the "
          "coefficients"),
      Contain("term-uses-counter", "poly-eval", 1, "ps\\[ctr\\]",
              {"counter-loop"},
              "Each term reads the coefficient at the counter",
              "Each term should read the coefficient at the loop counter"),
  };
  a.spec.id = a.id;
  a.spec.title = a.title;
  a.spec.methods.push_back(std::move(m));
  return a;
}

// ---------------------------------------------------------------------------
// rit-all-g-medals — count gold medals of a year (Fig. 7's assignment).
// ---------------------------------------------------------------------------

constexpr int kOlympicsRecords = 60;
constexpr uint64_t kOlympicsSeed = 20170419;

Assignment BuildGoldMedals() {
  Assignment a;
  a.id = "rit-all-g-medals";
  a.title = "Count gold medals of a year";
  a.description =
      "Count all the gold medals awarded in a given year in the Summer "
      "Olympic Games (records: first last medal year separator).";
  a.paper_space_size = 559872;
  a.paper_pattern_count = 9;
  a.paper_constraint_count = 7;
  a.paper_discrepancies = 1872;

  a.generator = SubmissionTemplate(
      "void countGoldMedals(int year) {\n"
      "  int i = ${i_init};\n"
      "  int medals = 0;\n"
      "  int p = 0;\n"
      "  int y = 0;\n"
      "  String e = \"\";\n"
      "  Scanner s = new Scanner(new File(\"summer_olympics.txt\"));\n"
      "  while (s.hasNext()) {\n"
      "    if (${fn_cond})\n"
      "      e = s.next();\n"
      "    if (${ln_cond})\n"
      "      e = s.next();\n"
      "    if (${medal_cond})\n"
      "      p = s.nextInt();\n"
      "    if (${year_cond})\n"
      "      y = s.nextInt();\n"
      "    if (${sep_cond})\n"
      "      e = s.next();\n"
      "    if (${filter})\n"
      "      ${count_op};\n"
      "    ${extra}\n"
      "    i++;\n"
      "  }\n"
      "  s.close();\n"
      "  ${print};\n"
      "  ${tail}\n"
      "}\n",
      {
          {"i_init", {"1", "0", "2"}},
          {"fn_cond",
           {"i % 5 == 1", "i % 5 == 2", "i % 5 == 3", "i % 5 == 0"}},
          {"ln_cond",
           {"i % 5 == 2", "i % 5 == 1", "i % 5 == 4", "i % 5 == 0"}},
          {"medal_cond",
           {"i % 5 == 3", "i % 5 == 4", "i % 5 == 1", "i % 5 == 2"}},
          {"year_cond",
           {"i % 5 == 4", "i % 5 == 3", "i % 5 == 2", "i % 5 == 0"}},
          {"sep_cond", {"i % 5 == 0", "i % 5 == 1", "i % 5 == 4"}},
          {"filter",
           {"i % 5 == 0 && y == year && p == 1",
            "i % 5 == 0 && p == 1 && y == year", "y == year && p == 1"}},
          {"count_op", {"medals += 1", "medals++", "medals = medals + 1"}},
          {"print",
           {"System.out.println(medals)", "System.out.print(medals)",
            "System.out.println(medals + 1)"}},
          {"extra", {"", "if (p < 0) break;", "if (i < 0) break;"}},
          {"tail", {"", "int unused = 9;", "int extra2 = 9;"}},
      });

  a.suite.exec_options.max_steps = 300000;
  a.suite.method = "countGoldMedals";
  a.suite.files["summer_olympics.txt"] =
      testing::GenerateOlympicsFile(kOlympicsRecords, kOlympicsSeed);
  a.suite.inputs = {{Value::Int(1912)}, {Value::Int(1924)},
                    {Value::Int(1984)}, {Value::Int(1996)},
                    {Value::Int(2000)}, {Value::Int(2016)}};

  MethodSpec m;
  m.expected_name = "countGoldMedals";
  m.patterns = {Use("scanner-loop"),       Use("field-extract", 5),
                Use("gold-filter"),        Use("init-zero", 3),
                Use("init-one"),           Use("counter-loop", 2),
                Use("assign-print"),       Use("double-increment", 0),
                Use("athlete-filter", 0)};
  m.constraints = {
      Contain("reads-first-name-slot", "field-extract", 0,
              "fex % 5 == 1", {},
              "You read the first-name field (position 1)",
              "A read of the first-name field (i % 5 == 1) is missing or "
              "duplicated onto another position"),
      Contain("reads-last-name-slot", "field-extract", 0, "fex % 5 == 2",
              {}, "You read the last-name field (position 2)",
              "A read of the last-name field (i % 5 == 2) is missing or "
              "duplicated onto another position"),
      Contain("reads-medal-slot", "field-extract", 0, "fex % 5 == 3", {},
              "You read the medal field (position 3)",
              "A read of the medal field (i % 5 == 3) is missing or "
              "duplicated onto another position"),
      Contain("reads-year-slot", "field-extract", 0, "fex % 5 == 4", {},
              "You read the year field (position 4)",
              "A read of the year field (i % 5 == 4) is missing or "
              "duplicated onto another position"),
      Contain("reads-separator-slot", "field-extract", 0, "fex % 5 == 0",
              {}, "You consume the record separator (position 0)",
              "Consuming the record separator (i % 5 == 0) is missing or "
              "duplicated onto another position"),
      Contain("medal-count-is-printed", "assign-print", 1,
              "print(ln)?\\(gm\\)$", {"gold-filter"},
          "The console output is exactly the medal count",
          "Print exactly the medal count, nothing else"),
      MakeEdgeConstraint(
          "fields-read-inside-loop", "scanner-loop", 1, "field-extract", 0,
          pdg::EdgeType::kCtrl,
          "The record fields are read inside the Scanner loop",
          "Read the record fields inside the Scanner loop"),
  };
  a.spec.id = a.id;
  a.spec.title = a.title;
  a.spec.methods.push_back(std::move(m));
  return a;
}

// ---------------------------------------------------------------------------
// rit-medals-by-ath — count medals of a given athlete.
// ---------------------------------------------------------------------------

Assignment BuildMedalsByAthlete() {
  Assignment a;
  a.id = "rit-medals-by-ath";
  a.title = "Count medals of an athlete";
  a.description =
      "Count all the medals awarded to a given athlete in the Summer "
      "Olympic Games.";
  a.paper_space_size = 746496;
  a.paper_pattern_count = 9;
  a.paper_constraint_count = 7;
  a.paper_discrepancies = 744;

  a.generator = SubmissionTemplate(
      "void medalsByAthlete(String first, String last) {\n"
      "  int i = ${i_init};\n"
      "  int medals = 0;\n"
      "  int m = 0;\n"
      "  String fn = \"\";\n"
      "  String ln = \"\";\n"
      "  String e = \"\";\n"
      "  Scanner s = new Scanner(new File(\"summer_olympics.txt\"));\n"
      "  while (s.hasNext()) {\n"
      "    if (${fn_cond})\n"
      "      fn = s.next();\n"
      "    if (${ln_cond})\n"
      "      ln = s.next();\n"
      "    if (${medal_cond})\n"
      "      m = s.nextInt();\n"
      "    if (${year_cond})\n"
      "      e = s.next();\n"
      "    if (${sep_cond})\n"
      "      e = s.next();\n"
      "    if (${filter})\n"
      "      ${count_op};\n"
      "    ${extra}\n"
      "    i++;\n"
      "  }\n"
      "  s.close();\n"
      "  ${print};\n"
      "  ${tail}\n"
      "}\n",
      {
          {"i_init", {"1", "0", "2"}},
          {"fn_cond",
           {"i % 5 == 1", "i % 5 == 2", "i % 5 == 3", "i % 5 == 0"}},
          {"ln_cond",
           {"i % 5 == 2", "i % 5 == 1", "i % 5 == 4", "i % 5 == 0"}},
          {"medal_cond",
           {"i % 5 == 3", "i % 5 == 4", "i % 5 == 1", "i % 5 == 2"}},
          {"year_cond",
           {"i % 5 == 4", "i % 5 == 3", "i % 5 == 2", "i % 5 == 0"}},
          {"sep_cond",
           {"i % 5 == 0", "i % 5 == 1", "i % 5 == 4", "i % 5 == 2"}},
          {"filter",
           {"i % 5 == 0 && fn.equals(first) && ln.equals(last) && m > 0",
            "i % 5 == 0 && ln.equals(last) && fn.equals(first) && m > 0",
            "fn.equals(first) && ln.equals(last)"}},
          {"count_op", {"medals += 1", "medals++", "medals = medals + 1"}},
          {"print",
           {"System.out.println(medals)", "System.out.print(medals)",
            "System.out.println(medals + 1)"}},
          {"extra", {"", "if (m < 0) break;", "if (i < 0) break;"}},
          {"tail", {"", "int unused = 9;", "int extra2 = 9;"}},
      });

  a.suite.exec_options.max_steps = 300000;
  a.suite.method = "medalsByAthlete";
  a.suite.files["summer_olympics.txt"] =
      testing::GenerateOlympicsFile(kOlympicsRecords, kOlympicsSeed);
  a.suite.inputs = {{Value::Str("jesse"), Value::Str("griffith")},
                    {Value::Str("carl"), Value::Str("lewis")},
                    {Value::Str("florence"), Value::Str("bolt")},
                    {Value::Str("katie"), Value::Str("ledecky")},
                    {Value::Str("no"), Value::Str("body")}};

  MethodSpec m;
  m.expected_name = "medalsByAthlete";
  m.patterns = {Use("scanner-loop"),       Use("field-extract", 5),
                Use("athlete-filter"),     Use("init-zero", 2),
                Use("init-one"),           Use("counter-loop", 2),
                Use("assign-print"),       Use("double-increment", 0),
                Use("gold-filter", 0)};
  m.constraints = {
      Contain("reads-first-name-slot", "field-extract", 0,
              "fex % 5 == 1", {},
              "You read the first-name field (position 1)",
              "A read of the first-name field (i % 5 == 1) is missing or "
              "duplicated onto another position"),
      Contain("reads-last-name-slot", "field-extract", 0, "fex % 5 == 2",
              {}, "You read the last-name field (position 2)",
              "A read of the last-name field (i % 5 == 2) is missing or "
              "duplicated onto another position"),
      Contain("reads-medal-slot", "field-extract", 0, "fex % 5 == 3", {},
              "You read the medal field (position 3)",
              "A read of the medal field (i % 5 == 3) is missing or "
              "duplicated onto another position"),
      Contain("reads-year-slot", "field-extract", 0, "fex % 5 == 4", {},
              "You read the year field (position 4)",
              "A read of the year field (i % 5 == 4) is missing or "
              "duplicated onto another position"),
      Contain("reads-separator-slot", "field-extract", 0, "fex % 5 == 0",
              {}, "You consume the record separator (position 0)",
              "Consuming the record separator (i % 5 == 0) is missing or "
              "duplicated onto another position"),
      Contain("medal-count-is-printed", "assign-print", 1,
              "print(ln)?\\(am\\)$", {"athlete-filter"},
          "The console output is exactly the medal count",
          "Print exactly the medal count, nothing else"),
      MakeEdgeConstraint(
          "fields-read-inside-loop", "scanner-loop", 1, "field-extract", 0,
          pdg::EdgeType::kCtrl,
          "The record fields are read inside the Scanner loop",
          "Read the record fields inside the Scanner loop"),
  };
  a.spec.id = a.id;
  a.spec.title = a.title;
  a.spec.methods.push_back(std::move(m));
  return a;
}

}  // namespace

KnowledgeBase::KnowledgeBase() {
  Add(BuildAssignment1());
  Add(BuildP1V1());
  Add(BuildP2V1());
  Add(BuildP2V2());
  Add(BuildP3V1());
  Add(BuildP3V2());
  Add(BuildP4V1());
  Add(BuildP4V2());
  Add(BuildDerivatives());
  Add(BuildPolynomials());
  Add(BuildGoldMedals());
  Add(BuildMedalsByAthlete());
}

void KnowledgeBase::Add(Assignment assignment) {
  ids_.push_back(assignment.id);
  assignments_[assignment.id] = std::move(assignment);
}

const KnowledgeBase& KnowledgeBase::Get() {
  static const KnowledgeBase* kBase = new KnowledgeBase();
  return *kBase;
}

const Assignment& KnowledgeBase::assignment(const std::string& id) const {
  auto it = assignments_.find(id);
  if (it == assignments_.end()) {
    std::fprintf(stderr, "unknown assignment id: %s\n", id.c_str());
    std::abort();
  }
  return it->second;
}

}  // namespace jfeed::kb
