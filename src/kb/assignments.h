#ifndef JFEED_KB_ASSIGNMENTS_H_
#define JFEED_KB_ASSIGNMENTS_H_

#include <map>
#include <string>
#include <vector>

#include "core/submission_matcher.h"
#include "kb/patterns.h"
#include "synth/generator.h"
#include "testing/functional.h"

namespace jfeed::kb {

/// Everything the evaluation needs for one assignment: the instructor
/// specification (patterns + constraints, Table I columns P and C), the
/// error-model generator whose search-space size is Table I column S, and
/// the functional test suite (column T / discrepancies D).
struct Assignment {
  std::string id;
  std::string title;
  std::string description;
  core::AssignmentSpec spec;
  synth::SubmissionTemplate generator;
  testing::FunctionalSuite suite;
  /// Column S of Table I — the paper's reported search-space size; always
  /// equal to generator.SpaceSize().
  uint64_t paper_space_size = 0;
  /// Columns P / C / D of Table I (for the bench report).
  int paper_pattern_count = 0;
  int paper_constraint_count = 0;
  int paper_discrepancies = 0;

  /// The reference solution (= generator.Generate(0)).
  std::string Reference() const { return generator.Generate(0); }
};

/// The full knowledge base: the 24-pattern library plus the 12 real-world
/// assignments of Table I.
class KnowledgeBase {
 public:
  static const KnowledgeBase& Get();

  const PatternLibrary& patterns() const { return PatternLibrary::Get(); }
  const Assignment& assignment(const std::string& id) const;
  const std::vector<std::string>& assignment_ids() const { return ids_; }
  size_t size() const { return assignments_.size(); }

 private:
  KnowledgeBase();
  void Add(Assignment assignment);

  std::map<std::string, Assignment> assignments_;
  std::vector<std::string> ids_;
};

}  // namespace jfeed::kb

#endif  // JFEED_KB_ASSIGNMENTS_H_
