#include "kb/extensions.h"

#include <cstdio>
#include <cstdlib>

namespace jfeed::kb {

using core::Pattern;
using core::PatternBuilder;
using core::PatternNodeType;
using core::PatternVariant;

namespace {

Pattern Must(Result<Pattern> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "extension pattern failed to build: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(*result);
}

/// Builds the "step by two" access variation. `start` pins the starting
/// parity (0 for even positions, 1 for odd). Node layout:
///   0 Untyped  array source        (aligns with primary slot 0)
///   1 Assign   index init          (slot 1)
///   2 Assign   index += 2          (slot 2)
///   3 Cond     bound check         (slot 3)
///   4 Untyped  array access        (slot 5 of the primary!)
Pattern StepAccessPattern(const std::string& id, const std::string& name,
                          const std::string& index_var,
                          const std::string& array_var, int start) {
  const std::string x = index_var;
  const std::string s = array_var;
  return Must(
      PatternBuilder(id, name)
          .Var(x)
          .Var(s)
          .Node(PatternNodeType::kUntyped, s)
          .Node(PatternNodeType::kAssign,
                x + " = " + std::to_string(start), "",
                "{" + x + "} starts at position " + std::to_string(start),
                "{" + x + "} should start at position " +
                    std::to_string(start))
          .Node(PatternNodeType::kAssign,
                x + " \\+= 2|" + x + " = " + x + " \\+ 2",
                x + " \\+= \\d+|" + x + " = " + x + " \\+ \\d+",
                "{" + x + "} advances by two positions",
                "{" + x + "} should advance by exactly two positions")
          .Node(PatternNodeType::kCond, x + " < " + s + "\\.length",
                x + " <= " + s + "\\.length",
                "{" + x + "} does not go beyond {" + s + "}.length - 1",
                "{" + x + "} is out of bounds going beyond {" + s +
                    "}.length - 1")
          .Node(PatternNodeType::kUntyped, s + "\\[" + x + "\\]", "",
                "{" + x + "} is used exactly to access {" + s + "}",
                "You should access {" + s + "} by using {" + x +
                    "} exactly")
          .DataEdge(0, 3)
          .DataEdge(0, 4)
          .DataEdge(1, 2)
          .DataEdge(1, 3)
          .DataEdge(1, 4)
          .CtrlEdge(3, 2)
          .CtrlEdge(3, 4)
          .Present("You access every second position by stepping the index "
                   "by two")
          .Missing("Stepping the index by two positions is missing")
          .Build());
}

/// Accumulation directly under a single (loop) condition. Node layout:
///   0 Assign init (slot 0), 1 Cond (slot 2), 2 Assign update (slot 3).
Pattern DirectAccumPattern(const std::string& id, const std::string& name,
                           const std::string& var, const char* op,
                           int identity) {
  std::string update = std::string(var) + " \\" + op + "= \\w+\\[|" +
                       var + " = " + var + " \\" + op + " \\w+\\[";
  return Must(
      PatternBuilder(id, name)
          .Var(var)
          .Node(PatternNodeType::kAssign,
                var + " = " + std::to_string(identity), var + " = -?\\d+",
                "{" + var + "} is initialized to " +
                    std::to_string(identity),
                "{" + var + "} should be initialized to " +
                    std::to_string(identity))
          .Node(PatternNodeType::kCond, "")
          .Node(PatternNodeType::kAssign, update, "",
                "{" + var + "} is cumulatively updated", "")
          .CtrlEdge(1, 2)
          .DataEdge(0, 2)
          .Present("You cumulatively update {" + var +
                   "} directly inside the loop")
          .Missing("A cumulative update inside the loop is missing")
          .Build());
}

}  // namespace

ExtensionLibrary::ExtensionLibrary()
    : even_positions_step_(StepAccessPattern(
          "even-positions-step", "Even positions via index += 2", "vx",
          "vs", 0)),
      odd_positions_step_(StepAccessPattern(
          "odd-positions-step", "Odd positions via index += 2", "ox", "os",
          1)),
      cond_accum_mul_direct_(DirectAccumPattern(
          "cond-accum-mul-direct", "Direct cumulative multiplication",
          "md", "*", 1)),
      cond_accum_add_direct_(DirectAccumPattern(
          "cond-accum-add-direct", "Direct cumulative addition", "ad", "+",
          0)) {}

const ExtensionLibrary& ExtensionLibrary::Get() {
  static const ExtensionLibrary* kLibrary = new ExtensionLibrary();
  return *kLibrary;
}

void ExtensionLibrary::AttachAssignment1Variations(
    core::AssignmentSpec* spec) const {
  for (auto& method : spec->methods) {
    for (auto& use : method.patterns) {
      if (use.pattern == nullptr) continue;
      if (use.pattern->id == "even-positions") {
        // Primary slots: 0 array, 1 init, 2 step, 3 bound, 5 access.
        use.variants.push_back(PatternVariant{
            &even_positions_step_,
            {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {5, 4}},
            {{"vx", "ex"}, {"vs", "es"}}});
      } else if (use.pattern->id == "odd-positions") {
        use.variants.push_back(PatternVariant{
            &odd_positions_step_,
            {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {5, 4}},
            {{"ox", "x"}, {"os", "s"}}});
      } else if (use.pattern->id == "init-one") {
        // The odd access starts its index at 1, adding a second
        // 1-initialization under the alternative strategy.
        use.also_accept_counts.push_back(use.expected_count + 1);
      } else if (use.pattern->id == "cond-accum-mul") {
        // Primary slots: 0 init, 2 inner cond, 3 update.
        use.variants.push_back(PatternVariant{
            &cond_accum_mul_direct_, {{0, 0}, {2, 1}, {3, 2}},
            {{"md", "d"}}});
      } else if (use.pattern->id == "cond-accum-add") {
        use.variants.push_back(PatternVariant{
            &cond_accum_add_direct_, {{0, 0}, {2, 1}, {3, 2}},
            {{"ad", "c"}}});
      }
    }
  }
}

}  // namespace jfeed::kb
