#include "kb/patterns.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace jfeed::kb {

using core::Pattern;
using core::PatternBuilder;
using core::PatternNodeType;

namespace {

Pattern Must(Result<Pattern> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "knowledge-base pattern failed to build: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(*result);
}

// Shared increment alternation (x++, ++x, x += 1, x = x + 1).
constexpr const char* kIncExact =
    "x\\+\\+|\\+\\+x|x \\+= 1|x = x \\+ 1";
constexpr const char* kIncApprox = "x \\+= \\d+|x = x \\+ \\d+|x\\+\\+";

std::string WithVar(std::string tmpl, const std::string& var) {
  // Replaces the placeholder variable name `x` (whole word, never inside a
  // regex escape) with `var`. Templates above only use `x` as the variable.
  std::string out;
  for (size_t i = 0; i < tmpl.size(); ++i) {
    if (tmpl[i] == 'x' &&
        (i == 0 || (!isalnum(static_cast<unsigned char>(tmpl[i - 1])) &&
                    tmpl[i - 1] != '\\')) &&
        (i + 1 == tmpl.size() ||
         !isalnum(static_cast<unsigned char>(tmpl[i + 1])))) {
      out += var;
    } else {
      out.push_back(tmpl[i]);
    }
  }
  return out;
}

}  // namespace

PatternLibrary::PatternLibrary() {
  // P01 — Fig. 4: accessing odd positions sequentially in an array.
  Add(Must(
      PatternBuilder("odd-positions", "Accessing odd positions sequentially")
          .Var("x")
          .Var("s")
          .Node(PatternNodeType::kUntyped, "s")
          .Node(PatternNodeType::kAssign, "x = 0", "x = -?\\d+",
                "{x} is initialized to 0", "{x} should be initialized to 0")
          .Node(PatternNodeType::kAssign, kIncExact, kIncApprox,
                "{x} is incremented by 1", "{x} should be incremented by 1")
          .Node(PatternNodeType::kCond, "x < s\\.length", "x <= s\\.length",
                "{x} does not go beyond {s}.length - 1",
                "{x} is out of bounds going beyond {s}.length - 1")
          .Node(PatternNodeType::kCond, "x % 2 == 1", "",
                "You are using {x} % 2 == 1 to control that {x} is odd", "")
          .Node(PatternNodeType::kUntyped, "s\\[x\\]", "",
                "{x} is used exactly to access {s}",
                "You should access {s} by using {x} exactly")
          .DataEdge(0, 3)
          .DataEdge(0, 5)
          .DataEdge(1, 2)
          .DataEdge(1, 3)
          .DataEdge(1, 4)
          .DataEdge(1, 5)
          .CtrlEdge(3, 2)
          .CtrlEdge(3, 4)
          .CtrlEdge(4, 5)
          .Present("You are correctly accessing odd positions sequentially "
                   "in an array")
          .Missing("You are not accessing odd positions sequentially in an "
                   "array, please, consider using a loop and a condition; "
                   "recall that odd is computed by i % 2 == 1, where i is "
                   "an index variable")
          .Build()));

  // P02 — the even-position twin of P01.
  Add(Must(
      PatternBuilder("even-positions",
                     "Accessing even positions sequentially")
          .Var("ex")
          .Var("es")
          .Node(PatternNodeType::kUntyped, "es")
          .Node(PatternNodeType::kAssign, "ex = 0", "ex = -?\\d+",
                "{ex} is initialized to 0",
                "{ex} should be initialized to 0")
          .Node(PatternNodeType::kAssign, WithVar(kIncExact, "ex"),
                WithVar(kIncApprox, "ex"), "{ex} is incremented by 1",
                "{ex} should be incremented by 1")
          .Node(PatternNodeType::kCond, "ex < es\\.length",
                "ex <= es\\.length",
                "{ex} does not go beyond {es}.length - 1",
                "{ex} is out of bounds going beyond {es}.length - 1")
          .Node(PatternNodeType::kCond, "ex % 2 == 0", "",
                "You are using {ex} % 2 == 0 to control that {ex} is even",
                "")
          .Node(PatternNodeType::kUntyped, "es\\[ex\\]", "",
                "{ex} is used exactly to access {es}",
                "You should access {es} by using {ex} exactly")
          .DataEdge(0, 3)
          .DataEdge(0, 5)
          .DataEdge(1, 2)
          .DataEdge(1, 3)
          .DataEdge(1, 4)
          .DataEdge(1, 5)
          .CtrlEdge(3, 2)
          .CtrlEdge(3, 4)
          .CtrlEdge(4, 5)
          .Present("You are correctly accessing even positions sequentially "
                   "in an array")
          .Missing("You are not accessing even positions sequentially in an "
                   "array; recall that even is computed by i % 2 == 0, "
                   "where i is an index variable")
          .Build()));

  // P03 — Fig. 5: conditional cumulatively adding.
  Add(Must(
      PatternBuilder("cond-accum-add", "Conditional cumulatively adding")
          .Var("c")
          .Node(PatternNodeType::kAssign, "c = 0", "c = -?\\d+",
                "{c} is initialized to 0", "{c} should be initialized to 0")
          .Node(PatternNodeType::kCond, "")
          .Node(PatternNodeType::kCond, "")
          .Node(PatternNodeType::kAssign, "c \\+=|c = c \\+", "",
                "{c} is cumulatively added", "")
          .CtrlEdge(1, 2)
          .CtrlEdge(2, 3)
          .DataEdge(0, 3)
          .Present("You are cumulatively adding {c} under a condition")
          .Missing("You are not cumulatively adding a variable under a "
                   "condition inside a loop")
          .Build()));

  // P04 — the multiplicative twin of P03 (product accumulator starts at 1).
  Add(Must(
      PatternBuilder("cond-accum-mul",
                     "Conditional cumulatively multiplying")
          .Var("d")
          .Node(PatternNodeType::kAssign, "d = 1", "d = -?\\d+",
                "{d} is initialized to 1 (the multiplicative identity)",
                "{d} should be initialized to 1, not 0, or the product "
                "will always be 0")
          .Node(PatternNodeType::kCond, "")
          .Node(PatternNodeType::kCond, "")
          .Node(PatternNodeType::kAssign, "d \\*=|d = d \\*", "",
                "{d} is cumulatively multiplied", "")
          .CtrlEdge(1, 2)
          .CtrlEdge(2, 3)
          .DataEdge(0, 3)
          .Present("You are cumulatively multiplying {d} under a condition")
          .Missing("You are not cumulatively multiplying a variable under "
                   "a condition inside a loop")
          .Build()));

  // P05 — Fig. 6: assign and print to console.
  Add(Must(PatternBuilder("assign-print", "Assign and print to console")
               .Var("y")
               .Node(PatternNodeType::kAssign, "y", "",
                     "{y} is assigned a value", "")
               .Node(PatternNodeType::kCall,
                     "System\\.out\\.print(ln)?\\(.*y", "",
                     "{y} is printed to console",
                     "{y} should be printed to console")
               .DataEdge(0, 1)
               .Present("You are printing {y} to console")
               .Missing("You should print your result to console")
               .Build()));

  // P06 — accumulator initialized to 0. Single node: its occurrence count
  // is the number of zero-initialized variables, which t̄ pins per
  // assignment.
  Add(Must(PatternBuilder("init-zero", "Accumulator initialized to 0")
               .Var("z")
               .Node(PatternNodeType::kAssign, "z = 0", "",
                     "{z} is initialized to 0", "")
               .Present("{z} starts at 0, the additive identity")
               .Missing("An accumulator initialized to 0 is missing")
               .Build()));

  // P07 — accumulator initialized to 1.
  Add(Must(PatternBuilder("init-one", "Accumulator initialized to 1")
               .Var("w")
               .Node(PatternNodeType::kAssign, "w = 1", "",
                     "{w} is initialized to 1", "")
               .Present("{w} starts at 1, the multiplicative identity")
               .Missing("An accumulator initialized to 1 is missing")
               .Build()));

  // P08 — canonical counting loop: init, guarded unit increment.
  Add(Must(PatternBuilder("counter-loop", "Sequential counting loop")
               .Var("ctr")
               .Node(PatternNodeType::kAssign, "ctr = 0|ctr = 1",
                     "ctr = -?\\d+", "{ctr} starts at the right position",
                     "{ctr} starts at an unexpected position")
               .Node(PatternNodeType::kCond, "")
               .Node(PatternNodeType::kAssign, WithVar(kIncExact, "ctr"),
                     WithVar(kIncApprox, "ctr"),
                     "{ctr} advances one step per iteration",
                     "{ctr} should advance exactly one step per iteration")
               .DataEdge(0, 2)
               .CtrlEdge(1, 2)
               .Present("You drive the loop with counter {ctr}")
               .Missing("A sequential counting loop is missing")
               .Build()));

  // P09 — running factorial: increment then multiply inside one loop.
  Add(Must(PatternBuilder("factorial-step", "Iterative factorial update")
               .Var("f")
               .Var("fx")
               .Node(PatternNodeType::kCond, "")
               .Node(PatternNodeType::kAssign, WithVar(kIncExact, "fx"),
                     WithVar(kIncApprox, "fx"),
                     "{fx} is incremented before the product update",
                     "{fx} should be incremented by 1")
               .Node(PatternNodeType::kAssign, "f \\*= fx$|f = f \\* fx$",
                     "f \\*=|f = f \\*",
                     "{f} accumulates the factorial as {f} *= {fx}",
                     "{f} should be multiplied exactly by {fx}")
               .CtrlEdge(0, 1)
               .CtrlEdge(0, 2)
               .DataEdge(1, 2)
               .Present("You maintain the running factorial {f}")
               .Missing("An iterative factorial update ({f} *= {fx} after "
                        "incrementing {fx}) is missing")
               .Build()));

  // P10 — Fibonacci rotation: t = a + b; a = b; b = t.
  Add(Must(PatternBuilder("fib-step", "Iterative Fibonacci update")
               .Var("fa")
               .Var("fb")
               .Var("ft")
               .Node(PatternNodeType::kCond, "")
               .Node(PatternNodeType::kAssign,
                     "ft = fa \\+ fb$|ft = fb \\+ fa$", "ft = .* \\+",
                     "{ft} holds the next Fibonacci number {fa} + {fb}",
                     "{ft} should be the sum of {fa} and {fb}")
               .Node(PatternNodeType::kAssign, "fa = fb", "",
                     "{fa} rotates to {fb}", "{fa} should rotate to {fb}")
               .Node(PatternNodeType::kAssign, "fb = ft", "",
                     "{fb} rotates to {ft}", "{fb} should rotate to {ft}")
               .CtrlEdge(0, 1)
               .CtrlEdge(0, 2)
               .CtrlEdge(0, 3)
               .DataEdge(1, 3)
               .Present("You advance the Fibonacci pair ({fa}, {fb}) "
                        "correctly")
               .Missing("The Fibonacci rotation (t = a + b; a = b; b = t) "
                        "is missing")
               .Build()));

  // P11 — search for the index where a growing sequence passes bound k.
  Add(Must(PatternBuilder("bound-search", "Growing until the input bound")
               .Var("k")
               .Var("bx")
               .Node(PatternNodeType::kDecl, "k", "",
                     "the input bound {k} is taken as a parameter", "")
               .Node(PatternNodeType::kCond, "<= k",
                     "< k|<= k - 1|- 1 < k|< k \\+ 1",
                     "the loop stops exactly when the sequence exceeds {k}",
                     "your loop bound is off by one with respect to {k}")
               .Node(PatternNodeType::kAssign, WithVar(kIncExact, "bx"),
                     WithVar(kIncApprox, "bx"),
                     "{bx} tracks the index of the sequence",
                     "{bx} should advance by exactly 1")
               .DataEdge(0, 1)
               .CtrlEdge(1, 2)
               .Present("You grow the sequence until it passes {k}")
               .Missing("A loop growing the sequence while it is <= {k} is "
                        "missing")
               .Build()));

  // P12 — digit extraction loop: n % 10 inside, n = n / 10 step.
  Add(Must(PatternBuilder("digit-extract", "Digit extraction loop")
               .Var("dn")
               .Node(PatternNodeType::kCond, "dn > 0|dn != 0|dn >= 1", "dn",
                     "you loop while {dn} still has digits",
                     "the digit loop should run while {dn} > 0")
               .Node(PatternNodeType::kAssign, "% 10", "",
                     "the last digit is taken with % 10",
                     "use % 10 to take the last digit")
               .Node(PatternNodeType::kAssign, "dn = dn / 10$|dn /= 10$",
                     "dn = |dn /=",
                     "{dn} drops its last digit with / 10",
                     "{dn} should drop its last digit with / 10")
               .CtrlEdge(0, 1)
               .CtrlEdge(0, 2)
               .Present("You decompose {dn} digit by digit")
               .Missing("A digit-extraction loop (% 10 and / 10 on the "
                        "number) is missing")
               .Build()));

  // P13 — sum of cubes of digits (the "special number" check).
  Add(Must(PatternBuilder("cube-accum", "Summing cubes of digits")
               .Var("cs")
               .Var("cd")
               .Node(PatternNodeType::kAssign, "cd = .* % 10$", "cd =",
                     "{cd} holds the current digit",
                     "{cd} should hold the current digit ( % 10 )")
               .Node(PatternNodeType::kAssign,
                     "cs \\+= cd \\* cd \\* cd$|"
                     "cs = cs \\+ cd \\* cd \\* cd$|"
                     "cs \\+= Math\\.pow\\(cd, ?3\\)$",
                     "cs \\+=|cs = cs \\+",
                     "{cs} accumulates the cube of {cd}",
                     "{cs} should add the cube of {cd} "
                     "({cd} * {cd} * {cd})")
               .DataEdge(0, 1)
               .Present("You sum the cubes of the digits into {cs}")
               .Missing("Summing the cubes of the digits is missing")
               .Build()));

  // P14 — building the reversed number.
  Add(Must(PatternBuilder("reverse-build", "Building the reversed number")
               .Var("rv")
               .Node(PatternNodeType::kCond, "")
               .Node(PatternNodeType::kAssign,
                     "rv = rv \\* 10 \\+ .* % 10",
                     "rv = rv \\* \\d+|rv \\*= \\d+|rv = .* % 10",
                     "{rv} is rebuilt as {rv} * 10 + digit",
                     "{rv} should be rebuilt as {rv} * 10 + digit")
               .CtrlEdge(0, 1)
               .Present("You build the reversed number in {rv}")
               .Missing("Building the reversed number (rev = rev * 10 + "
                        "digit) is missing")
               .Build()));

  // P15 — comparing a computed value against the input.
  Add(Must(PatternBuilder("equality-check", "Comparing against the input")
               .Var("eqr")
               .Var("eqk")
               .Node(PatternNodeType::kDecl, "eqk", "",
                     "the input {eqk} is available for the comparison", "")
               .Node(PatternNodeType::kUntyped, "eqr == eqk|eqk == eqr", "",
                     "you compare {eqr} with the input {eqk}",
                     "you should compare {eqr} with the input {eqk}")
               .DataEdge(0, 1)
               .Present("You compare the computed value {eqr} with the "
                        "input {eqk}")
               .Missing("The comparison of your computed value against the "
                        "input is missing")
               .Build()));

  // P16 — loop bounded by the range limit m.
  Add(Must(PatternBuilder("range-loop", "Loop bounded by the range limit")
               .Var("rm")
               .Node(PatternNodeType::kDecl, "rm", "",
                     "the range limit {rm} is taken as a parameter", "")
               .Node(PatternNodeType::kCond, "<= rm$",
                     "< rm|<= rm - 1|< rm \\+ 1|- 1 < rm",
                     "the loop is bounded by {rm}",
                     "the loop should be bounded by {rm}")
               .DataEdge(0, 1)
               .Present("You iterate up to the range limit {rm}")
               .Missing("A loop bounded by the range limit is missing")
               .Build()));

  // P17 — counting sequence members that reach the lower range bound.
  Add(Must(PatternBuilder("membership-count", "Counting range members")
               .Var("mn")
               .Var("mc")
               .Node(PatternNodeType::kDecl, "mn", "",
                     "the lower bound {mn} is taken as a parameter", "")
               .Node(PatternNodeType::kCond, ">= mn$",
                     "> mn$|> mn - 1$|>= mn \\+ 1$|mn <=|mn <",
                     "you only count values >= {mn}",
                     "the membership check against {mn} is off by one")
               .Node(PatternNodeType::kAssign,
                     "mc \\+= 1|mc\\+\\+|mc = mc \\+ 1",
                     "mc \\+=|mc = mc \\+",
                     "{mc} counts one per member",
                     "{mc} should count exactly one per member")
               .DataEdge(0, 1)
               .CtrlEdge(1, 2)
               .Present("You count members inside the range with {mc}")
               .Missing("Counting the sequence members inside the range is "
                        "missing")
               .Build()));

  // P18 — the Scanner-over-file loop skeleton.
  Add(Must(PatternBuilder("scanner-loop", "Scanner file-reading loop")
               .Var("sc")
               .Node(PatternNodeType::kAssign, "sc = new Scanner", "",
                     "{sc} opens the data file", "")
               .Node(PatternNodeType::kCond, "sc\\.hasNext\\(\\)",
                     "sc\\.hasNext",
                     "you loop while {sc} has tokens",
                     "loop on {sc}.hasNext()")
               .Node(PatternNodeType::kCall, "sc\\.close\\(\\)",
                     "sc\\.close",
                     "{sc} is closed after reading", "{sc} must be closed")
               .DataEdge(0, 1)
               .DataEdge(0, 2)
               .Present("You read the file with a Scanner loop")
               .Missing("The Scanner loop over the data file is missing")
               .Build()));

  // P19 — positional field extraction inside a record.
  Add(Must(PatternBuilder("field-extract", "Positional field extraction")
               .Var("fex")
               .Var("fes")
               .Var("fef")
               .Node(PatternNodeType::kCond, "fex % 5 == \\d",
                     "fex % \\d+ == \\d+",
                     "you select the field by its position "
                     "({fex} % 5)",
                     "the field position check on {fex} looks wrong — "
                     "records have 5 fields")
               .Node(PatternNodeType::kAssign,
                     "fef = fes\\.next(Int)?\\(\\)", "fef = fes\\.",
                     "{fef} reads its field from {fes}",
                     "{fef} should read its field with {fes}.next()")
               .CtrlEdge(0, 1)
               .Present("You extract a record field into {fef}")
               .Missing("Reading the record fields by position is missing")
               .Build()));

  // P20 — the gold-medal filter of rit-all-g-medals.
  Add(Must(PatternBuilder("gold-filter", "Gold medal filter")
               .Var("gy")
               .Var("gp")
               .Var("gyear")
               .Var("gm")
               .Node(PatternNodeType::kCond,
                     "% 5 == \\d+ && gy == gyear && gp == 1|"
                     "% 5 == \\d+ && gp == 1 && gy == gyear",
                     "gy == gyear|gp == 1",
                     "you count only gold medals ({gp} == 1) of year "
                     "{gyear}",
                     "the filter must require both the year ({gy} == "
                     "{gyear}) and a gold medal ({gp} == 1)")
               .Node(PatternNodeType::kAssign,
                     "gm \\+= 1|gm\\+\\+|gm = gm \\+ 1", "gm \\+=",
                     "{gm} counts one per matching record",
                     "{gm} should count exactly one per matching record")
               .CtrlEdge(0, 1)
               .Present("You count gold medals of the requested year "
                        "into {gm}")
               .Missing("The gold-medal filter (medal type 1 and matching "
                        "year) is missing")
               .Build()));

  // P21 — the athlete-name filter of rit-medals-by-ath.
  Add(Must(PatternBuilder("athlete-filter", "Athlete name filter")
               .Var("afn")
               .Var("aln")
               .Var("afirst")
               .Var("alast")
               .Var("am")
               .Node(PatternNodeType::kCond,
                     "% 5 == \\d+ && afn\\.equals\\(afirst\\) && "
                     "aln\\.equals\\(alast\\)|"
                     "% 5 == \\d+ && aln\\.equals\\(alast\\) && "
                     "afn\\.equals\\(afirst\\)",
                     "equals\\(afirst\\)|equals\\(alast\\)",
                     "you match the athlete by first and last name",
                     "the filter must match both the first name "
                     "({afn}.equals({afirst})) and the last name "
                     "({aln}.equals({alast}))")
               .Node(PatternNodeType::kAssign,
                     "am \\+= 1|am\\+\\+|am = am \\+ 1", "am \\+=",
                     "{am} counts one medal per matching record",
                     "{am} should count exactly one per matching record")
               .CtrlEdge(0, 1)
               .Present("You count the medals of the requested athlete "
                        "into {am}")
               .Missing("The athlete-name filter (first and last name "
                        "with equals) is missing")
               .Build()));

  // P22 — polynomial evaluation with Math.pow.
  Add(Must(PatternBuilder("poly-eval", "Polynomial evaluation")
               .Var("pr")
               .Var("ps")
               .Var("px")
               .Var("pv")
               .Node(PatternNodeType::kCond, "px < ps\\.length$",
                     "px <= ps\\.length",
                     "you visit every coefficient of {ps}",
                     "{px} walks past the end of {ps}")
               .Node(PatternNodeType::kAssign,
                     "pr \\+= ps\\[px\\] \\* Math\\.pow\\(pv, px\\)$|"
                     "pr = pr \\+ ps\\[px\\] \\* Math\\.pow\\(pv, px\\)$",
                     "pr \\+=|pr = pr \\+",
                     "{pr} accumulates {ps}[{px}] * {pv}^{px}",
                     "{pr} should accumulate coefficient times "
                     "{pv}^{px}")
               .CtrlEdge(0, 1)
               .Present("You evaluate the polynomial term by term into "
                        "{pr}")
               .Missing("The polynomial evaluation loop (coefficient * "
                        "x^i) is missing")
               .Build()));

  // P23 — the derivative shift b[i-1] = a[i] * i.
  Add(Must(PatternBuilder("derivative-shift", "Derivative coefficient shift")
               .Var("db")
               .Var("ds")
               .Var("dx")
               .Node(PatternNodeType::kAssign,
                     "db = new \\w+\\[ds\\.length - 1\\]",
                     "db = new \\w+\\[",
                     "{db} has room for one fewer coefficient",
                     "{db} must be allocated with {ds}.length - 1 slots")
               .Node(PatternNodeType::kCond, "dx < ds\\.length$",
                     "dx <= ds\\.length|dx < ds\\.length - 1",
                     "you visit the coefficients 1 .. {ds}.length - 1",
                     "the loop over {ds} is off by one")
               .Node(PatternNodeType::kAssign,
                     "db\\[dx - 1\\] = ds\\[dx\\] \\* dx", "db\\[",
                     "{db}[{dx} - 1] receives {ds}[{dx}] * {dx}",
                     "the derivative of term {dx} is {ds}[{dx}] * {dx}, "
                     "stored at {dx} - 1")
               .Node(PatternNodeType::kAssign, "dx = 1", "dx = -?\\d+",
                     "the power-rule loop starts at term 1",
                     "the power-rule loop must start at term 1 — the "
                     "constant term has no derivative")
               .DataEdge(0, 2)
               .DataEdge(3, 2)
               .CtrlEdge(1, 2)
               .Present("You compute the derivative coefficients with the "
                        "power rule")
               .Missing("The power-rule shift (b[i - 1] = a[i] * i) is "
                        "missing")
               .Build()));

  // P24 — bad pattern (expected count 0): the same index incremented twice
  // under one condition, the paper's sentinel-loop example.
  Add(Must(PatternBuilder("double-increment", "Index updated twice")
               .Var("dix")
               .Node(PatternNodeType::kCond, "")
               .Node(PatternNodeType::kAssign, WithVar(kIncExact, "dix"), "",
                     "", "")
               .Node(PatternNodeType::kAssign, WithVar(kIncExact, "dix"), "",
                     "", "")
               .CtrlEdge(0, 1)
               .CtrlEdge(0, 2)
               .Present("Good: the loop index is updated exactly once per "
                        "iteration")
               .Missing("You are updating the value of the index more than "
                        "once in a sentinel-controlled loop")
               .Build()));
}

void PatternLibrary::Add(core::Pattern pattern) {
  ids_.push_back(pattern.id);
  patterns_[pattern.id] = std::move(pattern);
}

const PatternLibrary& PatternLibrary::Get() {
  static const PatternLibrary* kLibrary = new PatternLibrary();
  return *kLibrary;
}

const core::Pattern& PatternLibrary::at(const std::string& id) const {
  auto it = patterns_.find(id);
  if (it == patterns_.end()) {
    std::fprintf(stderr, "unknown pattern id: %s\n", id.c_str());
    std::abort();
  }
  return it->second;
}

}  // namespace jfeed::kb
