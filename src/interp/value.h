#ifndef JFEED_INTERP_VALUE_H_
#define JFEED_INTERP_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "javalang/ast.h"
#include "support/result.h"

namespace jfeed::interp {

class Value;

/// Heap array object. Arrays have reference semantics (shared between
/// variables), matching Java.
struct ArrayValue {
  java::TypeKind elem_kind = java::TypeKind::kInt;
  std::vector<Value> elems;
};

/// State of a `Scanner` object reading whitespace-separated tokens from an
/// in-memory "file". Reference semantics, like Java.
struct ScannerState {
  std::vector<std::string> tokens;
  size_t pos = 0;
  bool closed = false;

  bool HasNext() const { return !closed && pos < tokens.size(); }
};

/// A runtime value of the Java subset. Ints, longs and chars share the
/// integer payload but keep their kind so printing matches Java (`int`
/// prints as 65, `char` as 'A', `double` as 2.0).
class Value {
 public:
  enum class Kind {
    kNull,
    kInt,
    kLong,
    kDouble,
    kBool,
    kChar,
    kString,
    kArray,
    kScanner,
  };

  Value() : kind_(Kind::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Kind::kInt, v); }
  static Value Long(int64_t v) { return Value(Kind::kLong, v); }
  static Value Char(int64_t v) { return Value(Kind::kChar, v); }
  static Value Bool(bool v) { return Value(Kind::kBool, v ? 1 : 0); }
  static Value Double(double v) {
    Value out(Kind::kDouble, 0);
    out.double_ = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out(Kind::kString, 0);
    out.string_ = std::move(v);
    return out;
  }
  static Value Array(std::shared_ptr<ArrayValue> v) {
    Value out(Kind::kArray, 0);
    out.array_ = std::move(v);
    return out;
  }
  static Value Scanner(std::shared_ptr<ScannerState> v) {
    Value out(Kind::kScanner, 0);
    out.scanner_ = std::move(v);
    return out;
  }

  /// Builds an int[] from a C++ vector (test/bench convenience).
  static Value IntArray(const std::vector<int64_t>& elems);
  /// Builds a double[] from a C++ vector.
  static Value DoubleArray(const std::vector<double>& elems);
  /// Builds a String[] from a C++ vector.
  static Value StringArray(const std::vector<std::string>& elems);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_numeric() const {
    return kind_ == Kind::kInt || kind_ == Kind::kLong ||
           kind_ == Kind::kDouble || kind_ == Kind::kChar;
  }
  bool is_integral() const {
    return kind_ == Kind::kInt || kind_ == Kind::kLong ||
           kind_ == Kind::kChar;
  }

  int64_t AsInt() const { return kind_ == Kind::kDouble
                                     ? static_cast<int64_t>(double_)
                                     : int_; }
  double AsDouble() const {
    return kind_ == Kind::kDouble ? double_ : static_cast<double>(int_);
  }
  bool AsBool() const { return int_ != 0; }
  const std::string& AsString() const { return string_; }
  const std::shared_ptr<ArrayValue>& AsArray() const { return array_; }
  const std::shared_ptr<ScannerState>& AsScanner() const { return scanner_; }

  /// Java's String.valueOf / println rendering of the value.
  std::string ToJavaString() const;

  /// Approximate heap footprint of this value in bytes: the slot itself
  /// plus owned payloads (string characters; array element slots and their
  /// string payloads, one level deep). Used by the interpreter's heap
  /// budget, so it only needs to be proportional to real usage, not exact.
  int64_t ApproxHeapBytes() const;

  /// Java `==` semantics on primitives, `equals` semantics on strings
  /// (intro-course submissions compare strings with equals()).
  bool JavaEquals(const Value& other) const;

 private:
  Value(Kind kind, int64_t v) : kind_(kind), int_(v) {}

  Kind kind_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::shared_ptr<ArrayValue> array_;
  std::shared_ptr<ScannerState> scanner_;
};

}  // namespace jfeed::interp

#endif  // JFEED_INTERP_VALUE_H_
