#include "interp/interpreter.h"

#include <chrono>
#include <cmath>
#include <sstream>

#include "javalang/printer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/fault.h"

namespace jfeed::interp {

namespace java = jfeed::java;

std::vector<std::string> TokenizeScannerInput(const std::string& contents) {
  std::vector<std::string> tokens;
  std::istringstream is(contents);
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

namespace {

/// How a statement finished; drives break/continue/return unwinding.
enum class Flow { kNormal, kBreak, kContinue, kReturn };

// Each interpreted call consumes several native Eval/ExecStmt frames, and
// sanitizer builds inflate those frames enough that 256 levels can overrun
// a default 8 MB thread stack before this guard fires. 128 still dwarfs any
// legitimate corpus recursion (bounded factorial/Fibonacci searches stay
// under ~25) while keeping worst-case native stack use well inside bounds.
constexpr int kMaxCallDepth = 128;

Value DefaultValueFor(const java::Type& type) {
  if (type.array_dims > 0) return Value::Null();
  switch (type.kind) {
    case java::TypeKind::kInt: return Value::Int(0);
    case java::TypeKind::kLong: return Value::Long(0);
    case java::TypeKind::kDouble: return Value::Double(0.0);
    case java::TypeKind::kBoolean: return Value::Bool(false);
    case java::TypeKind::kChar: return Value::Char(0);
    case java::TypeKind::kString: return Value::Str("");
    default: return Value::Null();
  }
}

class Exec {
 public:
  Exec(const java::CompilationUnit& unit,
       const std::map<std::string, std::string>& files,
       const ExecOptions& options)
      : unit_(unit), files_(files), options_(options) {}

  Result<ExecResult> Run(const std::string& method_name,
                         const std::vector<Value>& args) {
    JFEED_FAULT_POINT(fault::points::kInterpreterCall);
    if (options_.deadline_ms > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.deadline_ms);
      has_deadline_ = true;
    }
    JFEED_ASSIGN_OR_RETURN(Value ret, CallUser(method_name, args));
    ExecResult result;
    result.output_bytes = static_cast<int64_t>(out_.size());
    result.stdout_text = std::move(out_);
    result.return_value = std::move(ret);
    result.steps = steps_;
    result.heap_bytes = heap_bytes_;
    return result;
  }

 private:
  using Scope = std::map<std::string, Value>;

  Status Tick() {
    if (++steps_ > options_.max_steps) {
      return Status::Timeout("step budget exhausted (likely infinite loop)");
    }
    // The wall-clock check is throttled: a steady_clock read every step
    // would dominate the interpreter loop, and a few thousand steps resolve
    // in microseconds, so the deadline overshoot stays negligible.
    if (has_deadline_ && (steps_ & 4095) == 0 &&
        std::chrono::steady_clock::now() > deadline_) {
      return Status::Timeout("wall-clock deadline of " +
                             std::to_string(options_.deadline_ms) +
                             "ms exceeded");
    }
    return Status::OK();
  }

  /// Charges `bytes` against the heap budget. The budget is cumulative over
  /// the run (allocations are never credited back), making it a conservative
  /// bound that an adversarial allocation loop cannot dodge by dropping
  /// references.
  Status ChargeHeap(int64_t bytes, int line) {
    if (options_.max_heap_bytes <= 0) return Status::OK();
    heap_bytes_ += bytes;
    if (heap_bytes_ > options_.max_heap_bytes) {
      return Status::ResourceExhausted(
          "heap budget of " + std::to_string(options_.max_heap_bytes) +
          " bytes exceeded (line " + std::to_string(line) + ")");
    }
    return Status::OK();
  }

  Status RuntimeError(const std::string& msg, int line) {
    return Status::ExecutionError(msg + " (line " + std::to_string(line) +
                                  ")");
  }

  // --- Variables ----------------------------------------------------------

  Value* LookupVar(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  void DeclareVar(const std::string& name, Value value) {
    RecordTrace(name, value);
    scopes_.back()[name] = std::move(value);
  }

  void RecordTrace(const std::string& name, const Value& value) {
    if (options_.trace == nullptr) return;
    if (static_cast<int64_t>(options_.trace->size()) >=
        options_.max_trace_events) {
      return;
    }
    options_.trace->push_back({name, value.ToJavaString()});
  }

  // --- Method dispatch ----------------------------------------------------

  Result<Value> CallUser(const std::string& name,
                         const std::vector<Value>& args) {
    const java::Method* method = unit_.FindMethod(name);
    if (method == nullptr) {
      return Status::NotFound("method not found: " + name);
    }
    if (method->params.size() != args.size()) {
      return Status::ExecutionError(
          "wrong number of arguments for " + name + ": expected " +
          std::to_string(method->params.size()) + ", got " +
          std::to_string(args.size()));
    }
    if (++call_depth_ > kMaxCallDepth) {
      --call_depth_;
      return Status::ResourceExhausted(
          "call depth exceeded (runaway recursion)");
    }
    std::vector<Scope> saved = std::move(scopes_);
    scopes_.clear();
    scopes_.emplace_back();
    for (size_t i = 0; i < args.size(); ++i) {
      DeclareVar(method->params[i].name, args[i]);
    }
    Value saved_ret = std::move(return_value_);
    return_value_ = Value::Null();
    auto flow = ExecStmt(*method->body);
    Value ret = std::move(return_value_);
    return_value_ = std::move(saved_ret);
    scopes_ = std::move(saved);
    --call_depth_;
    if (!flow.ok()) return flow.status();
    return ret;
  }

  // --- Statements ---------------------------------------------------------

  Result<Flow> ExecStmt(const java::Stmt& s) {
    JFEED_RETURN_IF_ERROR(Tick());
    switch (s.kind) {
      case java::StmtKind::kBlock: {
        scopes_.emplace_back();
        for (const auto& child : s.body) {
          auto flow = ExecStmt(*child);
          if (!flow.ok() || *flow != Flow::kNormal) {
            scopes_.pop_back();
            return flow;
          }
        }
        scopes_.pop_back();
        return Flow::kNormal;
      }
      case java::StmtKind::kLocalVarDecl: {
        for (const auto& decl : s.decls) {
          Value v = DefaultValueFor(s.decl_type);
          if (decl.init) {
            JFEED_ASSIGN_OR_RETURN(v, Eval(*decl.init));
            v = Coerce(std::move(v), s.decl_type);
          }
          DeclareVar(decl.name, std::move(v));
        }
        return Flow::kNormal;
      }
      case java::StmtKind::kExprStmt: {
        JFEED_RETURN_IF_ERROR(Eval(*s.expr).status());
        return Flow::kNormal;
      }
      case java::StmtKind::kIf: {
        JFEED_ASSIGN_OR_RETURN(Value cond, Eval(*s.expr));
        if (cond.AsBool()) return ExecStmt(*s.then_branch);
        if (s.else_branch) return ExecStmt(*s.else_branch);
        return Flow::kNormal;
      }
      case java::StmtKind::kWhile: {
        while (true) {
          JFEED_RETURN_IF_ERROR(Tick());
          JFEED_ASSIGN_OR_RETURN(Value cond, Eval(*s.expr));
          if (!cond.AsBool()) break;
          JFEED_ASSIGN_OR_RETURN(Flow flow, ExecStmt(*s.loop_body));
          if (flow == Flow::kBreak) break;
          if (flow == Flow::kReturn) return Flow::kReturn;
        }
        return Flow::kNormal;
      }
      case java::StmtKind::kDoWhile: {
        while (true) {
          JFEED_RETURN_IF_ERROR(Tick());
          JFEED_ASSIGN_OR_RETURN(Flow flow, ExecStmt(*s.loop_body));
          if (flow == Flow::kBreak) break;
          if (flow == Flow::kReturn) return Flow::kReturn;
          JFEED_ASSIGN_OR_RETURN(Value cond, Eval(*s.expr));
          if (!cond.AsBool()) break;
        }
        return Flow::kNormal;
      }
      case java::StmtKind::kFor: {
        scopes_.emplace_back();
        Flow result = Flow::kNormal;
        Status status = Status::OK();
        if (s.for_init) {
          auto flow = ExecStmt(*s.for_init);
          if (!flow.ok()) status = flow.status();
        }
        while (status.ok()) {
          status = Tick();
          if (!status.ok()) break;
          if (s.expr) {
            auto cond = Eval(*s.expr);
            if (!cond.ok()) {
              status = cond.status();
              break;
            }
            if (!cond->AsBool()) break;
          }
          auto flow = ExecStmt(*s.loop_body);
          if (!flow.ok()) {
            status = flow.status();
            break;
          }
          if (*flow == Flow::kBreak) break;
          if (*flow == Flow::kReturn) {
            result = Flow::kReturn;
            break;
          }
          for (const auto& update : s.for_update) {
            auto v = Eval(*update);
            if (!v.ok()) {
              status = v.status();
              break;
            }
          }
        }
        scopes_.pop_back();
        if (!status.ok()) return status;
        return result;
      }
      case java::StmtKind::kSwitch: {
        JFEED_ASSIGN_OR_RETURN(Value selector, Eval(*s.expr));
        // Find the first matching case (or default), then fall through.
        size_t start = s.switch_cases.size();
        size_t default_arm = s.switch_cases.size();
        for (size_t i = 0; i < s.switch_cases.size(); ++i) {
          const auto& arm = s.switch_cases[i];
          if (!arm.label) {
            default_arm = i;
            continue;
          }
          JFEED_ASSIGN_OR_RETURN(Value label, Eval(*arm.label));
          if (selector.JavaEquals(label)) {
            start = i;
            break;
          }
        }
        if (start == s.switch_cases.size()) start = default_arm;
        scopes_.emplace_back();
        for (size_t i = start; i < s.switch_cases.size(); ++i) {
          for (const auto& stmt : s.switch_cases[i].body) {
            auto flow = ExecStmt(*stmt);
            if (!flow.ok()) {
              scopes_.pop_back();
              return flow;
            }
            if (*flow == Flow::kBreak) {
              scopes_.pop_back();
              return Flow::kNormal;  // break exits the switch.
            }
            if (*flow == Flow::kReturn || *flow == Flow::kContinue) {
              scopes_.pop_back();
              return *flow;
            }
          }
        }
        scopes_.pop_back();
        return Flow::kNormal;
      }
      case java::StmtKind::kReturn: {
        if (s.expr) {
          JFEED_ASSIGN_OR_RETURN(return_value_, Eval(*s.expr));
        } else {
          return_value_ = Value::Null();
        }
        return Flow::kReturn;
      }
      case java::StmtKind::kBreak:
        return Flow::kBreak;
      case java::StmtKind::kContinue:
        return Flow::kContinue;
    }
    return Status::Internal("unhandled statement kind");
  }

  // --- Expressions --------------------------------------------------------

  Result<Value> Eval(const java::Expr& e) {
    JFEED_RETURN_IF_ERROR(Tick());
    switch (e.kind) {
      case java::ExprKind::kIntLit: return Value::Int(e.int_value);
      case java::ExprKind::kLongLit: return Value::Long(e.int_value);
      case java::ExprKind::kDoubleLit: return Value::Double(e.double_value);
      case java::ExprKind::kBoolLit: return Value::Bool(e.bool_value);
      case java::ExprKind::kCharLit: return Value::Char(e.int_value);
      case java::ExprKind::kStringLit: return Value::Str(e.string_value);
      case java::ExprKind::kNullLit: return Value::Null();
      case java::ExprKind::kName: {
        Value* v = LookupVar(e.name);
        if (v == nullptr) {
          return RuntimeError("undefined variable '" + e.name + "'", e.line);
        }
        return *v;
      }
      case java::ExprKind::kArrayAccess: {
        JFEED_ASSIGN_OR_RETURN(Value arr, Eval(*e.lhs));
        JFEED_ASSIGN_OR_RETURN(Value idx, Eval(*e.rhs));
        if (arr.kind() != Value::Kind::kArray || arr.AsArray() == nullptr) {
          return RuntimeError("array access on non-array value", e.line);
        }
        int64_t i = idx.AsInt();
        const auto& elems = arr.AsArray()->elems;
        if (i < 0 || static_cast<size_t>(i) >= elems.size()) {
          return RuntimeError(
              "ArrayIndexOutOfBoundsException: index " + std::to_string(i) +
                  " for length " + std::to_string(elems.size()),
              e.line);
        }
        return elems[static_cast<size_t>(i)];
      }
      case java::ExprKind::kFieldAccess: {
        if (e.name == "length") {
          JFEED_ASSIGN_OR_RETURN(Value arr, Eval(*e.lhs));
          if (arr.kind() == Value::Kind::kArray && arr.AsArray() != nullptr) {
            return Value::Int(static_cast<int64_t>(arr.AsArray()->elems.size()));
          }
          return RuntimeError(".length on non-array value", e.line);
        }
        return RuntimeError("unsupported field '" + e.name + "'", e.line);
      }
      case java::ExprKind::kBinary:
        return EvalBinary(e);
      case java::ExprKind::kUnary:
        return EvalUnary(e);
      case java::ExprKind::kAssign:
        return EvalAssign(e);
      case java::ExprKind::kConditional: {
        JFEED_ASSIGN_OR_RETURN(Value cond, Eval(*e.lhs));
        return cond.AsBool() ? Eval(*e.rhs) : Eval(*e.third);
      }
      case java::ExprKind::kCast: {
        JFEED_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs));
        switch (e.type.kind) {
          case java::TypeKind::kInt: return Value::Int(v.AsInt());
          case java::TypeKind::kLong: return Value::Long(v.AsInt());
          case java::TypeKind::kDouble: return Value::Double(v.AsDouble());
          case java::TypeKind::kChar: return Value::Char(v.AsInt());
          default:
            return RuntimeError("unsupported cast target", e.line);
        }
      }
      case java::ExprKind::kMethodCall:
        return EvalCall(e);
      case java::ExprKind::kNewArray:
        return EvalNewArray(e);
      case java::ExprKind::kNewObject:
        return EvalNewObject(e);
    }
    return Status::Internal("unhandled expression kind");
  }

  Result<Value> EvalBinary(const java::Expr& e) {
    using BO = java::BinaryOp;
    // Short-circuit logical operators.
    if (e.binary_op == BO::kAnd || e.binary_op == BO::kOr) {
      JFEED_ASSIGN_OR_RETURN(Value lhs, Eval(*e.lhs));
      if (e.binary_op == BO::kAnd && !lhs.AsBool()) return Value::Bool(false);
      if (e.binary_op == BO::kOr && lhs.AsBool()) return Value::Bool(true);
      JFEED_ASSIGN_OR_RETURN(Value rhs, Eval(*e.rhs));
      return Value::Bool(rhs.AsBool());
    }
    JFEED_ASSIGN_OR_RETURN(Value lhs, Eval(*e.lhs));
    JFEED_ASSIGN_OR_RETURN(Value rhs, Eval(*e.rhs));
    return ApplyBinary(e.binary_op, std::move(lhs), std::move(rhs), e.line);
  }

  Result<Value> ApplyBinary(java::BinaryOp op, Value lhs, Value rhs,
                            int line) {
    using BO = java::BinaryOp;
    // String concatenation. Charged against the heap budget: `s = s + s` in
    // a loop doubles the string every iteration and would otherwise OOM the
    // host long before the step budget fires.
    if (op == BO::kAdd && (lhs.kind() == Value::Kind::kString ||
                           rhs.kind() == Value::Kind::kString)) {
      Value out = Value::Str(lhs.ToJavaString() + rhs.ToJavaString());
      JFEED_RETURN_IF_ERROR(ChargeHeap(out.ApproxHeapBytes(), line));
      return out;
    }
    if (op == BO::kEq) return Value::Bool(lhs.JavaEquals(rhs));
    if (op == BO::kNe) return Value::Bool(!lhs.JavaEquals(rhs));
    if (!lhs.is_numeric() || !rhs.is_numeric()) {
      return RuntimeError("arithmetic on non-numeric values", line);
    }
    bool as_double = lhs.kind() == Value::Kind::kDouble ||
                     rhs.kind() == Value::Kind::kDouble;
    if (as_double) {
      double a = lhs.AsDouble(), b = rhs.AsDouble();
      switch (op) {
        case BO::kAdd: return Value::Double(a + b);
        case BO::kSub: return Value::Double(a - b);
        case BO::kMul: return Value::Double(a * b);
        case BO::kDiv: return Value::Double(a / b);
        case BO::kMod: return Value::Double(std::fmod(a, b));
        case BO::kLt: return Value::Bool(a < b);
        case BO::kLe: return Value::Bool(a <= b);
        case BO::kGt: return Value::Bool(a > b);
        case BO::kGe: return Value::Bool(a >= b);
        default: break;
      }
    } else {
      int64_t a = lhs.AsInt(), b = rhs.AsInt();
      bool lng = lhs.kind() == Value::Kind::kLong ||
                 rhs.kind() == Value::Kind::kLong;
      auto wrap = [lng](int64_t v) {
        return lng ? Value::Long(v)
                   : Value::Int(static_cast<int32_t>(v));  // Java int wraps.
      };
      switch (op) {
        case BO::kAdd: return wrap(a + b);
        case BO::kSub: return wrap(a - b);
        case BO::kMul: return wrap(a * b);
        case BO::kDiv:
          if (b == 0) {
            return RuntimeError("ArithmeticException: / by zero", line);
          }
          return wrap(a / b);
        case BO::kMod:
          if (b == 0) {
            return RuntimeError("ArithmeticException: % by zero", line);
          }
          return wrap(a % b);
        case BO::kLt: return Value::Bool(a < b);
        case BO::kLe: return Value::Bool(a <= b);
        case BO::kGt: return Value::Bool(a > b);
        case BO::kGe: return Value::Bool(a >= b);
        default: break;
      }
    }
    return Status::Internal("unhandled binary operator");
  }

  Result<Value> EvalUnary(const java::Expr& e) {
    using UO = java::UnaryOp;
    switch (e.unary_op) {
      case UO::kNeg: {
        JFEED_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs));
        if (v.kind() == Value::Kind::kDouble) {
          return Value::Double(-v.AsDouble());
        }
        if (v.is_integral()) return Value::Int(-v.AsInt());
        return RuntimeError("negation of non-numeric value", e.line);
      }
      case UO::kNot: {
        JFEED_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs));
        return Value::Bool(!v.AsBool());
      }
      case UO::kPreInc:
      case UO::kPreDec:
      case UO::kPostInc:
      case UO::kPostDec: {
        int64_t delta =
            (e.unary_op == UO::kPreInc || e.unary_op == UO::kPostInc) ? 1 : -1;
        bool pre =
            e.unary_op == UO::kPreInc || e.unary_op == UO::kPreDec;
        JFEED_ASSIGN_OR_RETURN(Value old_value, Eval(*e.lhs));
        Value new_value;
        if (old_value.kind() == Value::Kind::kDouble) {
          new_value = Value::Double(old_value.AsDouble() + delta);
        } else {
          new_value = Value::Int(old_value.AsInt() + delta);
        }
        JFEED_RETURN_IF_ERROR(Store(*e.lhs, new_value));
        return pre ? new_value : old_value;
      }
    }
    return Status::Internal("unhandled unary operator");
  }

  Result<Value> EvalAssign(const java::Expr& e) {
    JFEED_ASSIGN_OR_RETURN(Value rhs, Eval(*e.rhs));
    Value result;
    if (e.assign_op == java::AssignOp::kAssign) {
      result = std::move(rhs);
    } else {
      JFEED_ASSIGN_OR_RETURN(Value old_value, Eval(*e.lhs));
      java::BinaryOp op;
      switch (e.assign_op) {
        case java::AssignOp::kAddAssign: op = java::BinaryOp::kAdd; break;
        case java::AssignOp::kSubAssign: op = java::BinaryOp::kSub; break;
        case java::AssignOp::kMulAssign: op = java::BinaryOp::kMul; break;
        case java::AssignOp::kDivAssign: op = java::BinaryOp::kDiv; break;
        case java::AssignOp::kModAssign: op = java::BinaryOp::kMod; break;
        default:
          return Status::Internal("unhandled compound assignment");
      }
      JFEED_ASSIGN_OR_RETURN(
          result, ApplyBinary(op, std::move(old_value), std::move(rhs),
                              e.line));
    }
    JFEED_RETURN_IF_ERROR(Store(*e.lhs, result));
    return result;
  }

  /// Stores `value` through an lvalue expression (Name or ArrayAccess).
  Status Store(const java::Expr& target, const Value& value) {
    if (target.kind == java::ExprKind::kName) {
      Value* slot = LookupVar(target.name);
      if (slot == nullptr) {
        return RuntimeError("undefined variable '" + target.name + "'",
                            target.line);
      }
      // Preserve the declared numeric kind so int variables stay ints.
      if (slot->kind() == Value::Kind::kInt && value.is_integral()) {
        *slot = Value::Int(static_cast<int32_t>(value.AsInt()));
      } else if (slot->kind() == Value::Kind::kLong && value.is_integral()) {
        *slot = Value::Long(value.AsInt());
      } else if (slot->kind() == Value::Kind::kDouble && value.is_numeric()) {
        *slot = Value::Double(value.AsDouble());
      } else {
        *slot = value;
      }
      RecordTrace(target.name, *slot);
      return Status::OK();
    }
    if (target.kind == java::ExprKind::kArrayAccess) {
      JFEED_ASSIGN_OR_RETURN(Value arr, Eval(*target.lhs));
      JFEED_ASSIGN_OR_RETURN(Value idx, Eval(*target.rhs));
      if (arr.kind() != Value::Kind::kArray || arr.AsArray() == nullptr) {
        return RuntimeError("array store on non-array value", target.line);
      }
      int64_t i = idx.AsInt();
      auto& elems = arr.AsArray()->elems;
      if (i < 0 || static_cast<size_t>(i) >= elems.size()) {
        return RuntimeError(
            "ArrayIndexOutOfBoundsException: index " + std::to_string(i) +
                " for length " + std::to_string(elems.size()),
            target.line);
      }
      if (arr.AsArray()->elem_kind == java::TypeKind::kDouble &&
          value.is_numeric()) {
        elems[static_cast<size_t>(i)] = Value::Double(value.AsDouble());
      } else if (arr.AsArray()->elem_kind == java::TypeKind::kInt &&
                 value.is_integral()) {
        elems[static_cast<size_t>(i)] =
            Value::Int(static_cast<int32_t>(value.AsInt()));
      } else {
        elems[static_cast<size_t>(i)] = value;
      }
      if (target.lhs->kind == java::ExprKind::kName) {
        RecordTrace(target.lhs->name, elems[static_cast<size_t>(i)]);
      }
      return Status::OK();
    }
    return RuntimeError("assignment target is not an lvalue", target.line);
  }

  /// Coerces an initializer to the declared type (int x = 'a'; double d = 1).
  static Value Coerce(Value v, const java::Type& type) {
    if (type.array_dims > 0) return v;
    switch (type.kind) {
      case java::TypeKind::kInt:
        if (v.is_integral()) return Value::Int(static_cast<int32_t>(v.AsInt()));
        return v;
      case java::TypeKind::kLong:
        if (v.is_integral()) return Value::Long(v.AsInt());
        return v;
      case java::TypeKind::kDouble:
        if (v.is_numeric()) return Value::Double(v.AsDouble());
        return v;
      default:
        return v;
    }
  }

  // --- Calls --------------------------------------------------------------

  static bool IsSystemOut(const java::Expr& receiver) {
    return receiver.kind == java::ExprKind::kFieldAccess &&
           receiver.name == "out" &&
           receiver.lhs->kind == java::ExprKind::kName &&
           receiver.lhs->name == "System";
  }

  Result<Value> EvalCall(const java::Expr& e) {
    // Bare call: a user-defined method of this unit.
    if (!e.lhs) {
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) {
        JFEED_ASSIGN_OR_RETURN(Value v, Eval(*a));
        args.push_back(std::move(v));
      }
      return CallUser(e.name, args);
    }
    // System.out.print / println.
    if (IsSystemOut(*e.lhs)) {
      if (e.name != "print" && e.name != "println") {
        return RuntimeError("unsupported System.out method '" + e.name + "'",
                            e.line);
      }
      std::string text;
      if (!e.args.empty()) {
        JFEED_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0]));
        text = v.ToJavaString();
      }
      out_ += text;
      if (e.name == "println") out_ += "\n";
      if (options_.max_output_bytes > 0 &&
          static_cast<int64_t>(out_.size()) > options_.max_output_bytes) {
        return Status::ResourceExhausted(
            "output budget of " + std::to_string(options_.max_output_bytes) +
            " bytes exceeded (line " + std::to_string(e.line) + ")");
      }
      return Value::Null();
    }
    // Math.* static builtins.
    if (e.lhs->kind == java::ExprKind::kName && e.lhs->name == "Math") {
      return EvalMath(e);
    }
    // Integer.parseInt.
    if (e.lhs->kind == java::ExprKind::kName && e.lhs->name == "Integer") {
      if (e.name == "parseInt" && e.args.size() == 1) {
        JFEED_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0]));
        errno = 0;
        char* end = nullptr;
        const std::string& s = v.AsString();
        long long parsed = std::strtoll(s.c_str(), &end, 10);
        if (errno != 0 || end != s.c_str() + s.size() || s.empty()) {
          return RuntimeError("NumberFormatException: \"" + s + "\"", e.line);
        }
        return Value::Int(parsed);
      }
      return RuntimeError("unsupported Integer method '" + e.name + "'",
                          e.line);
    }
    // Instance methods: evaluate the receiver.
    JFEED_ASSIGN_OR_RETURN(Value recv, Eval(*e.lhs));
    if (recv.kind() == Value::Kind::kScanner) return EvalScanner(e, recv);
    if (recv.kind() == Value::Kind::kString) return EvalString(e, recv);
    return RuntimeError("unsupported method call '" + e.name + "'", e.line);
  }

  Result<Value> EvalMath(const java::Expr& e) {
    std::vector<double> a;
    for (const auto& arg : e.args) {
      JFEED_ASSIGN_OR_RETURN(Value v, Eval(*arg));
      if (!v.is_numeric()) {
        return RuntimeError("Math argument is not numeric", e.line);
      }
      a.push_back(v.AsDouble());
    }
    const std::string& f = e.name;
    if (f == "pow" && a.size() == 2) return Value::Double(std::pow(a[0], a[1]));
    if (f == "sqrt" && a.size() == 1) return Value::Double(std::sqrt(a[0]));
    if (f == "log" && a.size() == 1) return Value::Double(std::log(a[0]));
    if (f == "log10" && a.size() == 1) return Value::Double(std::log10(a[0]));
    if (f == "floor" && a.size() == 1) return Value::Double(std::floor(a[0]));
    if (f == "ceil" && a.size() == 1) return Value::Double(std::ceil(a[0]));
    if (f == "abs" && a.size() == 1) {
      // Integer abs keeps integer kind.
      if (e.args[0]->kind != java::ExprKind::kDoubleLit) {
        JFEED_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0]));
        if (v.is_integral()) {
          return Value::Int(v.AsInt() < 0 ? -v.AsInt() : v.AsInt());
        }
      }
      return Value::Double(std::fabs(a[0]));
    }
    if (f == "max" && a.size() == 2) {
      JFEED_ASSIGN_OR_RETURN(Value x, Eval(*e.args[0]));
      JFEED_ASSIGN_OR_RETURN(Value y, Eval(*e.args[1]));
      if (x.is_integral() && y.is_integral()) {
        return Value::Int(std::max(x.AsInt(), y.AsInt()));
      }
      return Value::Double(std::max(a[0], a[1]));
    }
    if (f == "min" && a.size() == 2) {
      JFEED_ASSIGN_OR_RETURN(Value x, Eval(*e.args[0]));
      JFEED_ASSIGN_OR_RETURN(Value y, Eval(*e.args[1]));
      if (x.is_integral() && y.is_integral()) {
        return Value::Int(std::min(x.AsInt(), y.AsInt()));
      }
      return Value::Double(std::min(a[0], a[1]));
    }
    return RuntimeError("unsupported Math method '" + f + "'", e.line);
  }

  Result<Value> EvalScanner(const java::Expr& e, const Value& recv) {
    auto& sc = *recv.AsScanner();
    const std::string& f = e.name;
    if (f == "hasNext") return Value::Bool(sc.HasNext());
    if (f == "hasNextInt") {
      if (!sc.HasNext()) return Value::Bool(false);
      const std::string& tok = sc.tokens[sc.pos];
      char* end = nullptr;
      std::strtoll(tok.c_str(), &end, 10);
      return Value::Bool(end == tok.c_str() + tok.size() && !tok.empty());
    }
    if (f == "close") {
      sc.closed = true;
      return Value::Null();
    }
    if (!sc.HasNext()) {
      return RuntimeError("NoSuchElementException: scanner exhausted",
                          e.line);
    }
    if (f == "next") return Value::Str(sc.tokens[sc.pos++]);
    if (f == "nextInt") {
      const std::string& tok = sc.tokens[sc.pos];
      char* end = nullptr;
      errno = 0;
      long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno != 0 || end != tok.c_str() + tok.size() || tok.empty()) {
        return RuntimeError("InputMismatchException: \"" + tok + "\"",
                            e.line);
      }
      ++sc.pos;
      return Value::Int(v);
    }
    if (f == "nextDouble") {
      const std::string& tok = sc.tokens[sc.pos];
      char* end = nullptr;
      errno = 0;
      double v = std::strtod(tok.c_str(), &end);
      if (errno != 0 || end != tok.c_str() + tok.size() || tok.empty()) {
        return RuntimeError("InputMismatchException: \"" + tok + "\"",
                            e.line);
      }
      ++sc.pos;
      return Value::Double(v);
    }
    return RuntimeError("unsupported Scanner method '" + f + "'", e.line);
  }

  Result<Value> EvalString(const java::Expr& e, const Value& recv) {
    const std::string& s = recv.AsString();
    const std::string& f = e.name;
    if (f == "length" && e.args.empty()) {
      return Value::Int(static_cast<int64_t>(s.size()));
    }
    if (f == "equals" && e.args.size() == 1) {
      JFEED_ASSIGN_OR_RETURN(Value other, Eval(*e.args[0]));
      return Value::Bool(other.kind() == Value::Kind::kString &&
                         other.AsString() == s);
    }
    if (f == "charAt" && e.args.size() == 1) {
      JFEED_ASSIGN_OR_RETURN(Value idx, Eval(*e.args[0]));
      int64_t i = idx.AsInt();
      if (i < 0 || static_cast<size_t>(i) >= s.size()) {
        return RuntimeError("StringIndexOutOfBoundsException", e.line);
      }
      return Value::Char(static_cast<unsigned char>(s[i]));
    }
    if (f == "isEmpty" && e.args.empty()) return Value::Bool(s.empty());
    return RuntimeError("unsupported String method '" + f + "'", e.line);
  }

  Result<Value> EvalNewArray(const java::Expr& e) {
    auto arr = std::make_shared<ArrayValue>();
    arr->elem_kind = e.type.kind;
    if (!e.args.empty()) {
      JFEED_RETURN_IF_ERROR(ChargeHeap(
          static_cast<int64_t>(e.args.size() * sizeof(Value)), e.line));
      for (const auto& elem : e.args) {
        JFEED_ASSIGN_OR_RETURN(Value v, Eval(*elem));
        arr->elems.push_back(Coerce(std::move(v), e.type));
      }
      return Value::Array(std::move(arr));
    }
    if (!e.lhs) {
      return RuntimeError("array creation without a length", e.line);
    }
    JFEED_ASSIGN_OR_RETURN(Value len, Eval(*e.lhs));
    int64_t n = len.AsInt();
    if (n < 0) {
      return RuntimeError("NegativeArraySizeException: " + std::to_string(n),
                          e.line);
    }
    // Charge *before* allocating, so `new int[1 << 30]` is rejected by the
    // budget instead of taking the host down with it.
    JFEED_RETURN_IF_ERROR(
        ChargeHeap(n * static_cast<int64_t>(sizeof(Value)), e.line));
    if (n > 10'000'000) {
      return RuntimeError("array too large: " + std::to_string(n), e.line);
    }
    arr->elems.assign(static_cast<size_t>(n), DefaultValueFor(e.type));
    return Value::Array(std::move(arr));
  }

  Result<Value> EvalNewObject(const java::Expr& e) {
    if (e.name == "File") {
      if (e.args.size() != 1) {
        return RuntimeError("File expects one argument", e.line);
      }
      JFEED_ASSIGN_OR_RETURN(Value name, Eval(*e.args[0]));
      return Value::Str(name.AsString());  // A File is just its name here.
    }
    if (e.name == "Scanner") {
      if (e.args.size() != 1) {
        return RuntimeError("Scanner expects one argument", e.line);
      }
      JFEED_ASSIGN_OR_RETURN(Value file, Eval(*e.args[0]));
      auto it = files_.find(file.AsString());
      if (it == files_.end()) {
        return RuntimeError(
            "FileNotFoundException: " + file.AsString(), e.line);
      }
      auto state = std::make_shared<ScannerState>();
      state->tokens = TokenizeScannerInput(it->second);
      Value scanner = Value::Scanner(std::move(state));
      JFEED_RETURN_IF_ERROR(ChargeHeap(scanner.ApproxHeapBytes(), e.line));
      return scanner;
    }
    if (e.name == "String") {
      if (e.args.empty()) return Value::Str("");
      JFEED_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0]));
      Value out = Value::Str(v.ToJavaString());
      JFEED_RETURN_IF_ERROR(ChargeHeap(out.ApproxHeapBytes(), e.line));
      return out;
    }
    return RuntimeError("cannot instantiate '" + e.name + "'", e.line);
  }

  const java::CompilationUnit& unit_;
  const std::map<std::string, std::string>& files_;
  const ExecOptions& options_;
  std::string out_;
  int64_t steps_ = 0;
  int64_t heap_bytes_ = 0;
  int call_depth_ = 0;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
  std::vector<Scope> scopes_;
  Value return_value_;
};

}  // namespace

Result<ExecResult> Interpreter::Call(const std::string& method_name,
                                     const std::vector<Value>& args,
                                     const ExecOptions& options) {
  obs::Span span("interp.call");
  Exec exec(unit_, files_, options);
  auto result = exec.Run(method_name, args);

  // Per-call observability: one counter per outcome class plus step/heap/
  // output distributions for successful runs. Handles resolve once; every
  // call after that is a thread-local shard update (no-op until a metrics
  // sink enables the registry).
  auto& registry = obs::Registry::Global();
  static obs::Counter* calls_ok = registry.GetCounter(
      "jfeed_interp_calls_total", "Interpreter Call() invocations by outcome",
      {{"result", "ok"}});
  static obs::Counter* calls_timeout = registry.GetCounter(
      "jfeed_interp_calls_total", "Interpreter Call() invocations by outcome",
      {{"result", "timeout"}});
  static obs::Counter* calls_exhausted = registry.GetCounter(
      "jfeed_interp_calls_total", "Interpreter Call() invocations by outcome",
      {{"result", "resource_exhausted"}});
  static obs::Counter* calls_error = registry.GetCounter(
      "jfeed_interp_calls_total", "Interpreter Call() invocations by outcome",
      {{"result", "error"}});
  static obs::Counter* steps_total = registry.GetCounter(
      "jfeed_interp_steps_total",
      "Interpreter steps consumed by successful calls");
  static obs::Histogram* steps_hist = registry.GetHistogram(
      "jfeed_interp_steps", "Steps per successful interpreter call");
  static obs::Histogram* heap_hist = registry.GetHistogram(
      "jfeed_interp_heap_bytes",
      "Heap bytes charged per successful interpreter call");
  static obs::Histogram* output_hist = registry.GetHistogram(
      "jfeed_interp_output_bytes",
      "Stdout bytes produced per successful interpreter call");
  if (result.ok()) {
    calls_ok->Increment();
    steps_total->Increment(result->steps);
    steps_hist->Record(result->steps);
    heap_hist->Record(result->heap_bytes);
    output_hist->Record(result->output_bytes);
  } else {
    switch (result.status().code()) {
      case StatusCode::kTimeout: calls_timeout->Increment(); break;
      case StatusCode::kResourceExhausted:
        calls_exhausted->Increment();
        break;
      default: calls_error->Increment(); break;
    }
  }
  return result;
}

}  // namespace jfeed::interp
