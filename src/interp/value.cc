#include "interp/value.h"

#include <cmath>
#include <sstream>

namespace jfeed::interp {

Value Value::IntArray(const std::vector<int64_t>& elems) {
  auto arr = std::make_shared<ArrayValue>();
  arr->elem_kind = java::TypeKind::kInt;
  arr->elems.reserve(elems.size());
  for (int64_t v : elems) arr->elems.push_back(Value::Int(v));
  return Value::Array(std::move(arr));
}

Value Value::DoubleArray(const std::vector<double>& elems) {
  auto arr = std::make_shared<ArrayValue>();
  arr->elem_kind = java::TypeKind::kDouble;
  arr->elems.reserve(elems.size());
  for (double v : elems) arr->elems.push_back(Value::Double(v));
  return Value::Array(std::move(arr));
}

Value Value::StringArray(const std::vector<std::string>& elems) {
  auto arr = std::make_shared<ArrayValue>();
  arr->elem_kind = java::TypeKind::kString;
  arr->elems.reserve(elems.size());
  for (const auto& v : elems) arr->elems.push_back(Value::Str(v));
  return Value::Array(std::move(arr));
}

namespace {

/// Renders a double the way Java's Double.toString does for the common
/// cases intro assignments hit: always with a decimal point ("2.0"),
/// shortest representation otherwise.
std::string JavaDoubleToString(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "Infinity" : "-Infinity";
  std::ostringstream os;
  os.precision(15);
  os << v;
  std::string s = os.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos) {
    s += ".0";
  }
  return s;
}

}  // namespace

std::string Value::ToJavaString() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kInt:
    case Kind::kLong:
      return std::to_string(int_);
    case Kind::kChar:
      return std::string(1, static_cast<char>(int_));
    case Kind::kDouble:
      return JavaDoubleToString(double_);
    case Kind::kBool:
      return int_ != 0 ? "true" : "false";
    case Kind::kString:
      return string_;
    case Kind::kArray: {
      // Java prints an opaque reference; a stable placeholder is enough.
      return "[array]";
    }
    case Kind::kScanner:
      return "[scanner]";
  }
  return "?";
}

int64_t Value::ApproxHeapBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(Value));
  switch (kind_) {
    case Kind::kString:
      bytes += static_cast<int64_t>(string_.size());
      break;
    case Kind::kArray:
      if (array_ != nullptr) {
        bytes += static_cast<int64_t>(array_->elems.size() * sizeof(Value));
        for (const Value& elem : array_->elems) {
          if (elem.kind_ == Kind::kString) {
            bytes += static_cast<int64_t>(elem.string_.size());
          }
        }
      }
      break;
    case Kind::kScanner:
      if (scanner_ != nullptr) {
        for (const auto& tok : scanner_->tokens) {
          bytes += static_cast<int64_t>(tok.size() + sizeof(std::string));
        }
      }
      break;
    default:
      break;
  }
  return bytes;
}

bool Value::JavaEquals(const Value& other) const {
  if (kind_ == Kind::kString && other.kind_ == Kind::kString) {
    return string_ == other.string_;
  }
  if (is_numeric() && other.is_numeric()) {
    if (kind_ == Kind::kDouble || other.kind_ == Kind::kDouble) {
      return AsDouble() == other.AsDouble();
    }
    return int_ == other.int_;
  }
  if (kind_ == Kind::kBool && other.kind_ == Kind::kBool) {
    return int_ == other.int_;
  }
  if (kind_ == Kind::kNull && other.kind_ == Kind::kNull) return true;
  if (kind_ == Kind::kArray && other.kind_ == Kind::kArray) {
    return array_ == other.array_;  // Reference equality, like Java ==.
  }
  return false;
}

}  // namespace jfeed::interp
