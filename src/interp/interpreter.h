#ifndef JFEED_INTERP_INTERPRETER_H_
#define JFEED_INTERP_INTERPRETER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "interp/value.h"
#include "javalang/ast.h"
#include "support/result.h"

namespace jfeed::interp {

/// One recorded variable assignment (used by the CLARA-style baseline,
/// which compares whole variable traces).
struct TraceEvent {
  std::string var;
  std::string value;  ///< Java rendering of the assigned value.
};

/// Limits applied to one execution; the step limit is the paper's answer to
/// the infinite-loop problem of dynamic techniques (we bound, they cannot).
///
/// The remaining guards exist because a production grading service runs
/// *untrusted* programs: a submission must not be able to exhaust the host's
/// memory (`max_heap_bytes`), flood its output channel (`max_output_bytes`)
/// or outlive its scheduling slot (`deadline_ms`) any more than it can spin
/// forever (`max_steps`). Time budgets report kTimeout; space budgets (heap,
/// output, call depth) report kResourceExhausted, so callers can tell "slow"
/// from "blew up".
struct ExecOptions {
  int64_t max_steps = 2'000'000;  ///< Statement/expression budget.
  /// When non-null, every scalar variable assignment (declaration,
  /// assignment, increment) is appended here — the "variable traces" of
  /// Gulwani et al. Tracing is what makes dynamic comparison expensive on
  /// large inputs, which the CLARA benches demonstrate.
  std::vector<TraceEvent>* trace = nullptr;
  int64_t max_trace_events = 10'000'000;  ///< Hard cap on recorded events.
  /// Budget for interpreter-visible heap allocations (arrays, Strings,
  /// Scanner token buffers), charged via ApproxHeapBytes at allocation
  /// sites. The count is cumulative over the run (never decremented on
  /// garbage), which makes it a conservative allocation budget rather than
  /// a live-set measure. 0 or negative = unlimited.
  int64_t max_heap_bytes = 512ll << 20;
  /// Budget for bytes printed via System.out. 0 or negative = unlimited.
  int64_t max_output_bytes = 64ll << 20;
  /// Wall-clock deadline for the whole Call, in milliseconds; checked every
  /// few thousand steps so the overhead stays negligible. 0 = no deadline.
  int64_t deadline_ms = 0;
};

/// Outcome of a successful execution.
struct ExecResult {
  std::string stdout_text;  ///< Everything printed via System.out.
  Value return_value;       ///< Value::Null() for void methods.
  int64_t steps = 0;        ///< Steps consumed (for trace-cost accounting).
  /// Heap bytes charged over the run (cumulative allocation budget spend,
  /// the same number ChargeHeap guards) — surfaced for observability.
  int64_t heap_bytes = 0;
  /// Bytes printed via System.out (== stdout_text.size(), precomputed so
  /// monitoring does not depend on the caller keeping the text around).
  int64_t output_bytes = 0;
};

/// A tree-walking interpreter for the Java subset. One instance wraps one
/// compilation unit; methods of the unit can call each other. "Files" opened
/// through `new Scanner(new File(name))` are resolved against `files`, an
/// in-memory name -> contents map (the simulation of summer_olympics.txt).
///
/// Supported built-ins: System.out.print/println, Math.{pow,abs,sqrt,floor,
/// ceil,log,log10,max,min}, Integer.parseInt, String.equals/length/charAt,
/// Scanner.{hasNext,hasNextInt,next,nextInt,nextDouble,nextLine,close}.
class Interpreter {
 public:
  explicit Interpreter(const java::CompilationUnit& unit,
                       std::map<std::string, std::string> files = {})
      : unit_(unit), files_(std::move(files)) {}

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  /// Runs `method_name` with `args`. Returns ExecutionError for Java runtime
  /// errors (array out of bounds, division by zero, ...), Timeout when a
  /// time budget is exhausted (step budget / wall-clock deadline),
  /// ResourceExhausted when a space budget is (heap bytes, output bytes,
  /// call depth), NotFound for a missing method, SemanticError for
  /// constructs outside the subset.
  Result<ExecResult> Call(const std::string& method_name,
                          const std::vector<Value>& args,
                          const ExecOptions& options = ExecOptions());

 private:
  const java::CompilationUnit& unit_;
  std::map<std::string, std::string> files_;
};

/// Splits file contents into whitespace-separated Scanner tokens.
std::vector<std::string> TokenizeScannerInput(const std::string& contents);

}  // namespace jfeed::interp

#endif  // JFEED_INTERP_INTERPRETER_H_
