#include "synth/generator.h"

#include <set>

#include "support/strings.h"

namespace jfeed::synth {

uint64_t SubmissionTemplate::SpaceSize() const {
  uint64_t size = 1;
  for (const auto& site : sites_) {
    size *= static_cast<uint64_t>(site.variants.size());
  }
  return size;
}

std::vector<size_t> SubmissionTemplate::Decode(uint64_t index) const {
  std::vector<size_t> choice(sites_.size(), 0);
  for (size_t i = 0; i < sites_.size(); ++i) {
    uint64_t radix = sites_[i].variants.size();
    choice[i] = static_cast<size_t>(index % radix);
    index /= radix;
  }
  return choice;
}

std::string SubmissionTemplate::Instantiate(
    const std::vector<size_t>& choice) const {
  std::string out = template_;
  // Variants may themselves contain ${...} holes (e.g. a print-call site
  // wrapping a print-expression site), so substitute until a fixed point;
  // nesting is shallow, so a small bound suffices.
  for (int pass = 0; pass < 8; ++pass) {
    bool changed = false;
    for (size_t i = 0; i < sites_.size(); ++i) {
      std::string hole = "${" + sites_[i].name + "}";
      if (out.find(hole) == std::string::npos) continue;
      out = ReplaceAll(out, hole, sites_[i].variants[choice[i]]);
      changed = true;
    }
    if (!changed) break;
  }
  return out;
}

std::string SubmissionTemplate::Generate(uint64_t index) const {
  return Instantiate(Decode(index));
}

int SubmissionTemplate::ErrorCount(uint64_t index) const {
  std::vector<size_t> choice = Decode(index);
  int errors = 0;
  for (size_t c : choice) {
    if (c != 0) ++errors;
  }
  return errors;
}

Status SubmissionTemplate::Validate() const {
  std::set<std::string> site_names;
  for (const auto& site : sites_) {
    if (site.variants.empty()) {
      return Status::InvalidArgument("site '" + site.name +
                                     "' has no variants");
    }
    if (!site_names.insert(site.name).second) {
      return Status::InvalidArgument("duplicate site '" + site.name + "'");
    }
  }
  // Every hole (in the skeleton or inside another site's variants) must
  // correspond to a site, and every site must be reachable from a hole.
  auto scan_holes = [&](const std::string& text,
                        std::set<std::string>* holes) -> Status {
    size_t pos = 0;
    while ((pos = text.find("${", pos)) != std::string::npos) {
      size_t close = text.find('}', pos);
      if (close == std::string::npos) {
        return Status::InvalidArgument("unterminated ${...} hole");
      }
      holes->insert(text.substr(pos + 2, close - pos - 2));
      pos = close + 1;
    }
    return Status::OK();
  };
  std::set<std::string> holes;
  JFEED_RETURN_IF_ERROR(scan_holes(template_, &holes));
  for (const auto& site : sites_) {
    for (const auto& variant : site.variants) {
      JFEED_RETURN_IF_ERROR(scan_holes(variant, &holes));
    }
  }
  for (const auto& hole : holes) {
    if (site_names.count(hole) == 0) {
      return Status::InvalidArgument("hole '${" + hole + "}' has no site");
    }
  }
  for (const auto& site : sites_) {
    if (holes.count(site.name) == 0) {
      return Status::InvalidArgument("site '" + site.name +
                                     "' does not appear in the template");
    }
  }
  return Status::OK();
}

std::vector<uint64_t> SampleIndexes(uint64_t space_size, uint64_t count) {
  std::vector<uint64_t> out;
  if (space_size == 0) return out;
  if (count >= space_size) {
    out.reserve(space_size);
    for (uint64_t i = 0; i < space_size; ++i) out.push_back(i);
    return out;
  }
  out.reserve(count);
  out.push_back(0);  // Always include the reference solution.
  if (count == 1) return out;
  // Equally spaced sweep with a deterministic odd offset so consecutive
  // samples differ in low-order (= early) sites too.
  uint64_t stride = space_size / (count - 1);
  if (stride == 0) stride = 1;
  uint64_t offset = stride / 3 + 1;
  std::set<uint64_t> seen = {0};
  uint64_t i = offset;
  while (out.size() < count) {
    if (i >= space_size) i %= space_size;
    if (seen.insert(i).second) {
      out.push_back(i);
    } else {
      ++i;
      continue;
    }
    i += stride;
  }
  return out;
}

}  // namespace jfeed::synth
