#ifndef JFEED_SYNTH_GENERATOR_H_
#define JFEED_SYNTH_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "support/result.h"

namespace jfeed::synth {

/// One choice site of an error model: a named hole in the source template
/// with one correct variant (index 0) and one or more incorrect — or
/// functionally-equivalent-but-unexpected — variants. This reproduces the
/// paper's methodology: "Singh et al. use rules to represent mistakes of
/// students of the form i=0 → i=1 ... Such rules define a search space to be
/// explored. We ... explicitly generated the search space of student
/// submissions."
struct ChoiceSite {
  std::string name;                   ///< Hole name, `${name}` in the template.
  std::vector<std::string> variants;  ///< variants[0] is the correct choice.
};

/// A submission-space template for one assignment: a Java source skeleton
/// with `${site}` holes and the error-model variants for each hole. The
/// search space is the cross product of all variants; submission `index`
/// (0 .. SpaceSize()-1) selects variants by mixed-radix decoding, so
/// index 0 is the reference solution and enumeration is deterministic.
class SubmissionTemplate {
 public:
  SubmissionTemplate() = default;
  SubmissionTemplate(std::string source_template,
                     std::vector<ChoiceSite> sites)
      : template_(std::move(source_template)), sites_(std::move(sites)) {}

  const std::vector<ChoiceSite>& sites() const { return sites_; }

  /// Product of the per-site variant counts — Table I column S.
  uint64_t SpaceSize() const;

  /// Decodes a flat index into one variant choice per site (mixed radix,
  /// site 0 least significant).
  std::vector<size_t> Decode(uint64_t index) const;

  /// Renders the submission for `choice` (one variant index per site).
  std::string Instantiate(const std::vector<size_t>& choice) const;

  /// Renders submission `index`; Generate(0) is the reference solution.
  std::string Generate(uint64_t index) const;

  /// True when every site uses its correct (index 0) variant.
  bool IsAllCorrect(uint64_t index) const { return index == 0; }

  /// Number of sites where `index` deviates from the correct variant — the
  /// "number of injected errors" used by the AutoGrader scalability bench.
  int ErrorCount(uint64_t index) const;

  /// Validates the template: every `${hole}` has a site and vice versa,
  /// and every site has at least one variant.
  Status Validate() const;

 private:
  std::string template_;
  std::vector<ChoiceSite> sites_;
};

/// Deterministic sample of `count` indexes from [0, space_size): index 0
/// (the reference) plus an equally-spaced sweep with a fixed stride offset,
/// so repeated runs see the same submissions without materializing the
/// space. Returns all indexes when count >= space_size.
std::vector<uint64_t> SampleIndexes(uint64_t space_size, uint64_t count);

}  // namespace jfeed::synth

#endif  // JFEED_SYNTH_GENERATOR_H_
