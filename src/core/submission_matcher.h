#ifndef JFEED_CORE_SUBMISSION_MATCHER_H_
#define JFEED_CORE_SUBMISSION_MATCHER_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/constraint.h"
#include "core/feedback.h"
#include "core/pattern.h"
#include "core/pattern_matcher.h"
#include "javalang/ast.h"
#include "pdg/epdg.h"
#include "support/result.h"

namespace jfeed::core {

/// An alternative realization of a pattern's semantics — the paper's
/// Sec. VII future work ("patterns will be clustered by variations to
/// achieve the same semantics, e.g., a student can access even positions
/// in an array using if (i % 2 == 0) or updating twice the value of i").
/// `slot_map` aligns the variant's nodes with the primary pattern's node
/// indexes so that constraints written against the primary keep working:
/// slot_map[primary_node] = variant_node.
struct PatternVariant {
  const Pattern* pattern = nullptr;
  std::map<int, int> slot_map;
  /// Renames the variant's pattern variables to the primary's, so that
  /// constraint expressions written with the primary's variables bind:
  /// var_map[variant_var] = primary_var.
  std::map<std::string, std::string> var_map;
};

/// One pattern attached to an expected method, with the expected number of
/// embeddings t̄(q, p). `expected_count = 0` declares a *bad pattern* the
/// submission must not contain (Sec. V). When the primary pattern does not
/// occur the expected number of times, each variant is tried in order; the
/// first one matching exactly `expected_count` times provides the feedback
/// (its embeddings are re-indexed through `slot_map` for the constraints).
struct PatternUse {
  const Pattern* pattern = nullptr;
  int expected_count = 1;
  std::vector<PatternVariant> variants;
  /// Additional acceptable occurrence counts (variations extension:
  /// alternative strategies may legitimately shift auxiliary-pattern
  /// counts, e.g. a second 1-initialized index variable).
  std::vector<int> also_accept_counts;
};

/// The instructor's specification for one expected method q: the patterns
/// (the paper's p̄ and t̄) and the constraints (c̄) that apply to it.
struct MethodSpec {
  std::string expected_name;
  std::vector<PatternUse> patterns;
  std::vector<Constraint> constraints;
};

/// The instructor's specification for a whole assignment.
struct AssignmentSpec {
  std::string id;
  std::string title;
  std::vector<MethodSpec> methods;

  /// Total number of distinct patterns used (Table I column P).
  size_t PatternCount() const;
  /// Total number of constraints (Table I column C).
  size_t ConstraintCount() const;
};

/// The outcome of Algorithm 2 for one submission.
struct SubmissionFeedback {
  /// False when the submission has fewer methods than expected, i.e. it
  /// "does not adhere to the specification" and gets no feedback.
  bool matched = false;
  std::vector<FeedbackComment> comments;
  double score = 0.0;  ///< Λ(B) of the winning combination.
  /// Winning assignment of expected methods to submission methods.
  std::map<std::string, std::string> method_assignment;
  /// Total Algorithm-1 cost of grading this submission, aggregated over
  /// every method combination, pattern, and variant tried (not just the
  /// winning combination) — the service surfaces this for monitoring and
  /// the benches for the perf trajectory.
  MatchStats match_stats;

  /// True when every comment is Correct — the technique's "positive
  /// feedback only" verdict used for the discrepancy analysis (column D).
  bool AllCorrect() const;
};

/// Tuning for Algorithm 2.
struct SubmissionMatchOptions {
  MatchOptions match;            ///< Passed through to Algorithm 1.
  size_t max_combinations = 1024;  ///< Cap on method-assignment candidates.
  /// Arena + symbol pool for EPDG construction, reused across submissions
  /// by callers that grade in a loop (the grading pipeline). Null means
  /// each call self-owns private memory. MatchSubmission never resets the
  /// pool — the caller does, between submissions.
  pdg::EpdgMemory* epdg_memory = nullptr;
};

/// The cached result of one Algorithm-2 "cell" — the evaluation of one
/// expected method's patterns and constraints against one submission
/// method's EPDG. A cell depends only on (MethodSpec, that method's graph),
/// never on the rest of the submission, which is what makes it the reuse
/// unit of incremental resubmission grading (DESIGN.md §3d).
struct MethodCellValue {
  std::vector<FeedbackComment> comments;
  double score = 0.0;    ///< FeedbackScore(comments), the cell's Λ share.
  MatchStats stats;      ///< Algorithm-1 cost of computing this cell.
};

/// Thread-safe store of the computed cells of ONE submission method,
/// keyed by expected-method index into AssignmentSpec::methods. Owned by
/// the method-cache entry pinning that method's graph; concurrent workers
/// grading resubmissions that share the method converge on one store.
class MethodCellStore {
 public:
  /// Copies the cell for expected-method `qi` into *out when present.
  bool Find(size_t qi, MethodCellValue* out) const;
  /// Stores one cell; first writer wins (values for a key are equivalent).
  void Insert(size_t qi, MethodCellValue value);
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<size_t, MethodCellValue> cells_;
};

/// One submission method's EPDG plus the optional cell store to reuse and
/// fill. A null `cells` means no caching for this method (cold evaluation).
struct MethodGraphRef {
  const pdg::Epdg* graph = nullptr;
  MethodCellStore* cells = nullptr;
};

/// Algorithm 2 (SubmissionMatching): matches every pattern and constraint of
/// `spec` against the submission, trying every injective assignment of
/// expected methods onto submission methods and keeping the combination with
/// the highest Λ score.
Result<SubmissionFeedback> MatchSubmission(
    const AssignmentSpec& spec, const java::CompilationUnit& submission,
    const SubmissionMatchOptions& options = {});

/// Algorithm 2 over pre-built per-method graphs, reusing cached cells where
/// a MethodGraphRef carries a store. The feedback is byte-identical to
/// MatchSubmission over the same methods: cell evaluation is deterministic
/// over graph content, so a reused cell equals the cell a cold run would
/// compute, and match_stats aggregates the same demanded-cell set either
/// way. Graphs must appear in submission declaration order.
Result<SubmissionFeedback> MatchSubmissionGraphs(
    const AssignmentSpec& spec, std::span<const MethodGraphRef> graphs,
    const SubmissionMatchOptions& options = {});

/// Convenience overload: parses `source` first.
Result<SubmissionFeedback> MatchSubmissionSource(
    const AssignmentSpec& spec, const std::string& source,
    const SubmissionMatchOptions& options = {});

}  // namespace jfeed::core

#endif  // JFEED_CORE_SUBMISSION_MATCHER_H_
