#ifndef JFEED_CORE_AST_MATCHER_H_
#define JFEED_CORE_AST_MATCHER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/expr_pattern.h"
#include "javalang/ast.h"
#include "support/result.h"

namespace jfeed::core {

/// AST-based incomplete-expression matching — the paper's Sec. VII plan
/// ("We are planning to use more sophisticated methods to match Java
/// expressions rather than regular expressions like abstract syntax
/// trees"), implemented as an alternative backend for Definition 6.
///
/// The template is written as plain Java (no regex); its declared pattern
/// variables are metavariables that bind submission *variables*. Matching
/// is structural: the template must unify with some subtree of the content
/// expression. Compared to the regex backend this is immune to textual
/// traps ("% 10" matching inside "% 100") and can optionally treat
/// commutative operators as unordered ("x + y" matches "b + a").
class AstTemplate {
 public:
  struct Options {
    /// Treat +, *, ==, !=, && and || as commutative during unification.
    bool commutative = true;
  };

  AstTemplate() = default;

  /// Parses `java_source` as a single Java expression; identifiers from
  /// `variables` are metavariables, all others must match literally.
  static Result<AstTemplate> Create(const std::string& java_source,
                                    std::set<std::string> variables,
                                    Options options);
  static Result<AstTemplate> Create(const std::string& java_source,
                                    std::set<std::string> variables) {
    return Create(java_source, std::move(variables), Options());
  }

  bool empty() const { return template_ == nullptr; }

  /// Variables actually used by the template.
  const std::set<std::string>& variables() const { return used_vars_; }

  const std::string& text() const { return text_; }

  /// Definition 6 (r ⪯γ c) with tree semantics: true when the template
  /// unifies with some subtree of `content`, consistently extending a copy
  /// of `gamma` (injective on new bindings).
  bool Matches(const java::Expr& content, const VarBinding& gamma) const;

  /// All distinct γ-extensions under which the template matches some
  /// subtree of `content`. Each returned binding contains only the *new*
  /// variables (the caller merges with γ).
  std::vector<VarBinding> AllMatches(const java::Expr& content,
                                     const VarBinding& gamma) const;

 private:
  std::shared_ptr<const java::Expr> template_;
  std::set<std::string> used_vars_;
  std::set<std::string> metavars_;
  std::string text_;
  Options options_;
};

/// Parses an EPDG node's content string back into an expression AST for
/// AST-based matching. Node contents are statement-flavoured ("int x = 0",
/// "return x + y"); this strips the declaration type / return keyword and
/// parses the remainder. Returns an error for contents with no expression
/// form ("break").
Result<java::ExprPtr> ContentToExpr(const std::string& content);

}  // namespace jfeed::core

#endif  // JFEED_CORE_AST_MATCHER_H_
