#include "core/constraint.h"

#include <functional>

namespace jfeed::core {

std::vector<std::string> Constraint::ReferencedPatterns() const {
  std::vector<std::string> out;
  out.push_back(pattern_i);
  if (kind != ConstraintKind::kContainment) {
    out.push_back(pattern_j);
  } else {
    for (const auto& p : supporting) out.push_back(p);
  }
  return out;
}

Constraint MakeEqualityConstraint(std::string id, std::string pattern_i,
                                  int node_i, std::string pattern_j,
                                  int node_j, std::string feedback_ok,
                                  std::string feedback_fail) {
  Constraint c;
  c.kind = ConstraintKind::kEquality;
  c.id = std::move(id);
  c.pattern_i = std::move(pattern_i);
  c.node_i = node_i;
  c.pattern_j = std::move(pattern_j);
  c.node_j = node_j;
  c.feedback_ok = std::move(feedback_ok);
  c.feedback_fail = std::move(feedback_fail);
  return c;
}

Constraint MakeEdgeConstraint(std::string id, std::string pattern_i,
                              int node_i, std::string pattern_j, int node_j,
                              pdg::EdgeType edge_type,
                              std::string feedback_ok,
                              std::string feedback_fail) {
  Constraint c = MakeEqualityConstraint(std::move(id), std::move(pattern_i),
                                        node_i, std::move(pattern_j), node_j,
                                        std::move(feedback_ok),
                                        std::move(feedback_fail));
  c.kind = ConstraintKind::kEdgeExistence;
  c.edge_type = edge_type;
  return c;
}

Result<Constraint> MakeContainmentConstraint(
    std::string id, std::string main_pattern, int node,
    const std::string& expr_template, const std::set<std::string>& variables,
    std::vector<std::string> supporting, std::string feedback_ok,
    std::string feedback_fail) {
  Constraint c;
  c.kind = ConstraintKind::kContainment;
  c.id = std::move(id);
  c.pattern_i = std::move(main_pattern);
  c.node_i = node;
  JFEED_ASSIGN_OR_RETURN(c.expr,
                         ExprPattern::Create(expr_template, variables));
  c.supporting = std::move(supporting);
  c.feedback_ok = std::move(feedback_ok);
  c.feedback_fail = std::move(feedback_fail);
  return c;
}

namespace {

const std::vector<Embedding>* FindEmbeddings(const EmbeddingSets& sets,
                                             const std::string& pattern) {
  auto it = sets.find(pattern);
  return it != sets.end() ? &it->second : nullptr;
}

/// Tries every combination of one embedding per supporting pattern;
/// `visit` returns true to stop (condition satisfied).
bool ForEachSupportCombination(
    const std::vector<std::string>& supporting, const EmbeddingSets& sets,
    std::vector<const Embedding*>& chosen,
    const std::function<bool(const std::vector<const Embedding*>&)>& visit) {
  if (chosen.size() == supporting.size()) return visit(chosen);
  const auto* candidates = FindEmbeddings(sets, supporting[chosen.size()]);
  if (candidates == nullptr) return false;
  for (const auto& m : *candidates) {
    chosen.push_back(&m);
    if (ForEachSupportCombination(supporting, sets, chosen, visit)) {
      return true;
    }
    chosen.pop_back();
  }
  return false;
}

/// Evaluates the constraint; when `witness` is non-null and the constraint
/// holds, fills it with the union of the participating bindings.
ConstraintOutcome Evaluate(const Constraint& c, const pdg::Epdg& epdg,
                           const EmbeddingSets& sets, VarBinding* witness) {
  switch (c.kind) {
    case ConstraintKind::kEquality:
    case ConstraintKind::kEdgeExistence: {
      const auto* mi = FindEmbeddings(sets, c.pattern_i);
      const auto* mj = FindEmbeddings(sets, c.pattern_j);
      if (mi == nullptr || mj == nullptr || mi->empty() || mj->empty()) {
        return ConstraintOutcome::kNotApplicable;
      }
      // When no embedding carries the referenced node (a pattern variation
      // without that slot), the constraint cannot be assessed.
      bool node_i_present = false;
      bool node_j_present = false;
      for (const auto& a : *mi) node_i_present |= a.iota.count(c.node_i) > 0;
      for (const auto& b : *mj) node_j_present |= b.iota.count(c.node_j) > 0;
      if (!node_i_present || !node_j_present) {
        return ConstraintOutcome::kNotApplicable;
      }
      for (const auto& a : *mi) {
        auto ai = a.iota.find(c.node_i);
        if (ai == a.iota.end()) continue;
        for (const auto& b : *mj) {
          auto bj = b.iota.find(c.node_j);
          if (bj == b.iota.end()) continue;
          bool holds =
              c.kind == ConstraintKind::kEquality
                  ? ai->second == bj->second
                  : epdg.HasEdge(ai->second, bj->second, c.edge_type);
          if (holds) {
            if (witness != nullptr) {
              *witness = a.gamma;
              witness->insert(b.gamma.begin(), b.gamma.end());
            }
            return ConstraintOutcome::kFulfilled;
          }
        }
      }
      return ConstraintOutcome::kViolated;
    }
    case ConstraintKind::kContainment: {
      const auto* main_set = FindEmbeddings(sets, c.pattern_i);
      if (main_set == nullptr || main_set->empty()) {
        return ConstraintOutcome::kNotApplicable;
      }
      for (const auto& support_id : c.supporting) {
        const auto* s = FindEmbeddings(sets, support_id);
        if (s == nullptr || s->empty()) {
          return ConstraintOutcome::kNotApplicable;
        }
      }
      bool node_present = false;
      for (const auto& main : *main_set) {
        node_present |= main.iota.count(c.node_i) > 0;
      }
      if (!node_present) return ConstraintOutcome::kNotApplicable;
      for (const auto& main : *main_set) {
        auto node_it = main.iota.find(c.node_i);
        if (node_it == main.iota.end()) continue;
        const std::string& content = epdg.NodeAt(node_it->second).content;
        std::vector<const Embedding*> chosen;
        bool found = ForEachSupportCombination(
            c.supporting, sets, chosen,
            [&](const std::vector<const Embedding*>& support) {
              VarBinding merged = main.gamma;
              for (const auto* m : support) {
                merged.insert(m->gamma.begin(), m->gamma.end());
              }
              if (c.expr.Matches(content, merged)) {
                if (witness != nullptr) *witness = merged;
                return true;
              }
              return false;
            });
        if (found) return ConstraintOutcome::kFulfilled;
      }
      return ConstraintOutcome::kViolated;
    }
  }
  return ConstraintOutcome::kNotApplicable;
}

}  // namespace

ConstraintOutcome CheckConstraint(const Constraint& constraint,
                                  const pdg::Epdg& epdg,
                                  const EmbeddingSets& embeddings,
                                  const std::set<std::string>& not_expected) {
  for (const auto& pattern : constraint.ReferencedPatterns()) {
    if (not_expected.count(pattern) > 0) {
      return ConstraintOutcome::kNotApplicable;
    }
  }
  return Evaluate(constraint, epdg, embeddings, nullptr);
}

VarBinding ConstraintWitness(const Constraint& constraint,
                             const pdg::Epdg& epdg,
                             const EmbeddingSets& embeddings) {
  VarBinding witness;
  Evaluate(constraint, epdg, embeddings, &witness);
  return witness;
}

}  // namespace jfeed::core
