#include "core/constraint.h"

#include <functional>

namespace jfeed::core {

std::vector<std::string> Constraint::ReferencedPatterns() const {
  std::vector<std::string> out;
  out.push_back(pattern_i);
  if (kind != ConstraintKind::kContainment) {
    out.push_back(pattern_j);
  } else {
    for (const auto& p : supporting) out.push_back(p);
  }
  return out;
}

Constraint MakeEqualityConstraint(std::string id, std::string pattern_i,
                                  int node_i, std::string pattern_j,
                                  int node_j, std::string feedback_ok,
                                  std::string feedback_fail) {
  Constraint c;
  c.kind = ConstraintKind::kEquality;
  c.id = std::move(id);
  c.pattern_i = std::move(pattern_i);
  c.node_i = node_i;
  c.pattern_j = std::move(pattern_j);
  c.node_j = node_j;
  c.feedback_ok = std::move(feedback_ok);
  c.feedback_fail = std::move(feedback_fail);
  return c;
}

Constraint MakeEdgeConstraint(std::string id, std::string pattern_i,
                              int node_i, std::string pattern_j, int node_j,
                              pdg::EdgeType edge_type,
                              std::string feedback_ok,
                              std::string feedback_fail) {
  Constraint c = MakeEqualityConstraint(std::move(id), std::move(pattern_i),
                                        node_i, std::move(pattern_j), node_j,
                                        std::move(feedback_ok),
                                        std::move(feedback_fail));
  c.kind = ConstraintKind::kEdgeExistence;
  c.edge_type = edge_type;
  return c;
}

Result<Constraint> MakeContainmentConstraint(
    std::string id, std::string main_pattern, int node,
    const std::string& expr_template, const std::set<std::string>& variables,
    std::vector<std::string> supporting, std::string feedback_ok,
    std::string feedback_fail) {
  Constraint c;
  c.kind = ConstraintKind::kContainment;
  c.id = std::move(id);
  c.pattern_i = std::move(main_pattern);
  c.node_i = node;
  JFEED_ASSIGN_OR_RETURN(c.expr,
                         ExprPattern::Create(expr_template, variables));
  c.supporting = std::move(supporting);
  c.feedback_ok = std::move(feedback_ok);
  c.feedback_fail = std::move(feedback_fail);
  return c;
}

namespace {

const std::vector<Embedding>* FindEmbeddings(const EmbeddingSets& sets,
                                             const std::string& pattern) {
  auto it = sets.find(pattern);
  return it != sets.end() ? &it->second : nullptr;
}

/// A fulfilled constraint's witness binding, handed to the visitor without
/// materializing the merged map: Find resolves variables exactly as the
/// merged map would (first-wins), MergeInto reproduces that map on demand.
class WitnessBinding : public BindingLookup {
 public:
  virtual void MergeInto(VarBinding* out) const = 0;
};

/// First-wins lookup over the main embedding's γ and one chosen support
/// embedding per supporting pattern — exactly the binding a std::map merge
/// of main-then-supports would produce (map::insert never overwrites), but
/// without materializing the merged map per combination.
class LayeredBinding : public WitnessBinding {
 public:
  LayeredBinding(const VarBinding& main,
                 const std::vector<const Embedding*>& support)
      : main_(main), support_(support) {}

  const std::string* Find(const std::string& pattern_var) const override {
    auto it = main_.find(pattern_var);
    if (it != main_.end()) return &it->second;
    for (const Embedding* m : support_) {
      auto sit = m->gamma.find(pattern_var);
      if (sit != m->gamma.end()) return &sit->second;
    }
    return nullptr;
  }

  void MergeInto(VarBinding* out) const override {
    *out = main_;
    for (const Embedding* m : support_) {
      out->insert(m->gamma.begin(), m->gamma.end());
    }
  }

 private:
  const VarBinding& main_;
  const std::vector<const Embedding*>& support_;
};

/// Tries every combination of one embedding per supporting pattern;
/// `visit` returns true to stop (condition satisfied).
bool ForEachSupportCombination(
    const std::vector<std::string>& supporting, const EmbeddingSets& sets,
    std::vector<const Embedding*>& chosen,
    const std::function<bool(const std::vector<const Embedding*>&)>& visit) {
  if (chosen.size() == supporting.size()) return visit(chosen);
  const auto* candidates = FindEmbeddings(sets, supporting[chosen.size()]);
  if (candidates == nullptr) return false;
  for (const auto& m : *candidates) {
    chosen.push_back(&m);
    if (ForEachSupportCombination(supporting, sets, chosen, visit)) {
      return true;
    }
    chosen.pop_back();
  }
  return false;
}

/// First-wins lookup over an ordered pair of bindings — what merging `b`
/// into a copy of `a` with map::insert produces, without the copy.
class PairBinding : public WitnessBinding {
 public:
  PairBinding(const VarBinding& a, const VarBinding& b) : a_(a), b_(b) {}

  const std::string* Find(const std::string& pattern_var) const override {
    auto it = a_.find(pattern_var);
    if (it != a_.end()) return &it->second;
    auto jt = b_.find(pattern_var);
    return jt != b_.end() ? &jt->second : nullptr;
  }

  void MergeInto(VarBinding* out) const override {
    *out = a_;
    out->insert(b_.begin(), b_.end());
  }

 private:
  const VarBinding& a_;
  const VarBinding& b_;
};

/// Called with the witness binding of a fulfilled constraint — valid only
/// for the duration of the call.
using WitnessVisitor = std::function<void(const WitnessBinding&)>;

/// Evaluates the constraint; when `on_witness` is non-null and the
/// constraint holds, invokes it once with the witness binding.
ConstraintOutcome Evaluate(const Constraint& c, const pdg::Epdg& epdg,
                           const EmbeddingSets& sets,
                           const WitnessVisitor* on_witness) {
  switch (c.kind) {
    case ConstraintKind::kEquality:
    case ConstraintKind::kEdgeExistence: {
      const auto* mi = FindEmbeddings(sets, c.pattern_i);
      const auto* mj = FindEmbeddings(sets, c.pattern_j);
      if (mi == nullptr || mj == nullptr || mi->empty() || mj->empty()) {
        return ConstraintOutcome::kNotApplicable;
      }
      // When no embedding carries the referenced node (a pattern variation
      // without that slot), the constraint cannot be assessed.
      bool node_i_present = false;
      bool node_j_present = false;
      for (const auto& a : *mi) node_i_present |= a.iota.count(c.node_i) > 0;
      for (const auto& b : *mj) node_j_present |= b.iota.count(c.node_j) > 0;
      if (!node_i_present || !node_j_present) {
        return ConstraintOutcome::kNotApplicable;
      }
      for (const auto& a : *mi) {
        auto ai = a.iota.find(c.node_i);
        if (ai == a.iota.end()) continue;
        for (const auto& b : *mj) {
          auto bj = b.iota.find(c.node_j);
          if (bj == b.iota.end()) continue;
          bool holds =
              c.kind == ConstraintKind::kEquality
                  ? ai->second == bj->second
                  : epdg.HasEdge(ai->second, bj->second, c.edge_type);
          if (holds) {
            if (on_witness != nullptr) {
              (*on_witness)(PairBinding(a.gamma, b.gamma));
            }
            return ConstraintOutcome::kFulfilled;
          }
        }
      }
      return ConstraintOutcome::kViolated;
    }
    case ConstraintKind::kContainment: {
      const auto* main_set = FindEmbeddings(sets, c.pattern_i);
      if (main_set == nullptr || main_set->empty()) {
        return ConstraintOutcome::kNotApplicable;
      }
      for (const auto& support_id : c.supporting) {
        const auto* s = FindEmbeddings(sets, support_id);
        if (s == nullptr || s->empty()) {
          return ConstraintOutcome::kNotApplicable;
        }
      }
      bool node_present = false;
      for (const auto& main : *main_set) {
        node_present |= main.iota.count(c.node_i) > 0;
      }
      if (!node_present) return ConstraintOutcome::kNotApplicable;
      std::vector<const Embedding*> chosen;
      chosen.reserve(c.supporting.size());
      std::string scratch;
      for (const auto& main : *main_set) {
        auto node_it = main.iota.find(c.node_i);
        if (node_it == main.iota.end()) continue;
        std::string_view content = epdg.NodeAt(node_it->second).content;
        bool found = ForEachSupportCombination(
            c.supporting, sets, chosen,
            [&](const std::vector<const Embedding*>& support) {
              LayeredBinding merged(main.gamma, support);
              if (c.expr.Matches(content, merged, &scratch)) {
                if (on_witness != nullptr) (*on_witness)(merged);
                return true;
              }
              return false;
            });
        if (found) return ConstraintOutcome::kFulfilled;
      }
      return ConstraintOutcome::kViolated;
    }
  }
  return ConstraintOutcome::kNotApplicable;
}

/// ReferencedPatterns() membership test without materializing the list.
bool ReferencesNotExpected(const Constraint& c,
                           const std::set<std::string>& not_expected) {
  if (not_expected.count(c.pattern_i) > 0) return true;
  if (c.kind != ConstraintKind::kContainment) {
    return not_expected.count(c.pattern_j) > 0;
  }
  for (const auto& p : c.supporting) {
    if (not_expected.count(p) > 0) return true;
  }
  return false;
}

}  // namespace

ConstraintOutcome CheckConstraint(const Constraint& constraint,
                                  const pdg::Epdg& epdg,
                                  const EmbeddingSets& embeddings,
                                  const std::set<std::string>& not_expected) {
  if (ReferencesNotExpected(constraint, not_expected)) {
    return ConstraintOutcome::kNotApplicable;
  }
  return Evaluate(constraint, epdg, embeddings, nullptr);
}

ConstraintOutcome CheckConstraintFeedback(
    const Constraint& constraint, const pdg::Epdg& epdg,
    const EmbeddingSets& embeddings,
    const std::set<std::string>& not_expected, std::string* ok_message) {
  if (ReferencesNotExpected(constraint, not_expected)) {
    return ConstraintOutcome::kNotApplicable;
  }
  WitnessVisitor visitor = [&](const WitnessBinding& binding) {
    *ok_message = InstantiateFeedback(constraint.feedback_ok, binding);
  };
  return Evaluate(constraint, epdg, embeddings, &visitor);
}

VarBinding ConstraintWitness(const Constraint& constraint,
                             const pdg::Epdg& epdg,
                             const EmbeddingSets& embeddings) {
  VarBinding witness;
  WitnessVisitor visitor = [&witness](const WitnessBinding& binding) {
    binding.MergeInto(&witness);
  };
  Evaluate(constraint, epdg, embeddings, &visitor);
  return witness;
}

std::string ConstraintWitnessFeedback(const Constraint& constraint,
                                      const pdg::Epdg& epdg,
                                      const EmbeddingSets& embeddings,
                                      const std::string& tmpl) {
  std::string out;
  bool fulfilled = false;
  WitnessVisitor visitor = [&](const WitnessBinding& binding) {
    fulfilled = true;
    out = InstantiateFeedback(tmpl, binding);
  };
  Evaluate(constraint, epdg, embeddings, &visitor);
  // Not fulfilled: same rendering the empty-witness map produced (every
  // variable substitutes to its own name).
  if (!fulfilled) out = InstantiateFeedback(tmpl, VarBinding());
  return out;
}

}  // namespace jfeed::core
