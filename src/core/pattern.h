#ifndef JFEED_CORE_PATTERN_H_
#define JFEED_CORE_PATTERN_H_

#include <set>
#include <string>
#include <vector>

#include "core/ast_matcher.h"
#include "core/expr_pattern.h"
#include "pdg/epdg.h"
#include "support/result.h"

namespace jfeed::core {

/// Pattern-node types (Definition 4): the graph-node types plus Untyped,
/// which matches any graph node.
enum class PatternNodeType {
  kAssign,
  kBreak,
  kCall,
  kCond,
  kDecl,
  kReturn,
  kUntyped,
};

/// True when a pattern node of type `pattern` may match a graph node of
/// type `node` (Definition 7, condition 1).
bool TypeMatches(PatternNodeType pattern, pdg::NodeType node);

const char* PatternNodeTypeName(PatternNodeType type);

/// A pattern node u = (t_u, r, r̂, f_c, f_i) — Definition 4. `exact` is the
/// incomplete Java expression r; `approx` is the approximate expression r̂
/// (its variables must be a subset of r's). Feedback templates may mention
/// pattern variables in braces: "{x} should be initialized to 0".
struct PatternNode {
  PatternNodeType type = PatternNodeType::kUntyped;
  ExprPattern exact;
  ExprPattern approx;
  /// Optional AST backend for r (paper Sec. VII): when non-empty it
  /// replaces the regex `exact` during matching; `approx` remains a regex
  /// fallback that marks the node incorrect.
  AstTemplate ast_exact;
  std::string feedback_correct;
  std::string feedback_incorrect;
};

/// A pattern p = (U, F, f_p, f_m) — Definition 5 — plus identity metadata
/// for the knowledge base.
struct Pattern {
  struct Edge {
    int source = 0;
    int target = 0;
    pdg::EdgeType type = pdg::EdgeType::kCtrl;
  };

  std::string id;    ///< Knowledge-base identifier, e.g. "odd-positions".
  std::string name;  ///< Human-readable label.
  std::vector<PatternNode> nodes;
  std::vector<Edge> edges;
  std::string feedback_present;  ///< f_p.
  std::string feedback_missing;  ///< f_m.

  /// All pattern variables used by any node.
  std::set<std::string> Variables() const;

  /// Structural sanity: edge endpoints in range, approx-variable subsets.
  Status Validate() const;
};

/// Instantiates a feedback template: "{x} is initialized to 0" with
/// γ = {x→i} becomes "i is initialized to 0". Unbound variables keep their
/// pattern name so missing-pattern feedback stays readable.
std::string InstantiateFeedback(const std::string& tmpl,
                                const VarBinding& gamma);

/// Same substitution with bindings resolved through a BindingLookup —
/// identical output to the map form for a lookup with the same contents.
std::string InstantiateFeedback(const std::string& tmpl,
                                const BindingLookup& gamma);

/// Fluent construction of patterns (used by the knowledge base and tests):
///
///   Pattern p = PatternBuilder("odd-positions", "Accessing odd positions")
///       .Var("x").Var("s")
///       .Node(PatternNodeType::kAssign, "x = 0", "x = 1",
///             "{x} is initialized to 0", "{x} should be initialized to 0")
///       ...
///       .CtrlEdge(3, 4)
///       .Present("...").Missing("...")
///       .Build();
class PatternBuilder {
 public:
  PatternBuilder(std::string id, std::string name);

  /// Declares a pattern variable usable in subsequent node templates.
  PatternBuilder& Var(const std::string& name);

  /// Adds a node with exact template `exact` and optional approximate
  /// template `approx` (empty string = none). Returns *this; node indexes
  /// are assigned in insertion order starting at 0.
  PatternBuilder& Node(PatternNodeType type, const std::string& exact,
                       const std::string& approx = "",
                       const std::string& feedback_correct = "",
                       const std::string& feedback_incorrect = "");

  /// Adds a node whose exact expression is matched structurally (AST
  /// unification with commutative operators) instead of by regex. `approx`
  /// stays a regex template.
  PatternBuilder& NodeAst(PatternNodeType type, const std::string& exact,
                          const std::string& approx = "",
                          const std::string& feedback_correct = "",
                          const std::string& feedback_incorrect = "");

  PatternBuilder& CtrlEdge(int source, int target);
  PatternBuilder& DataEdge(int source, int target);

  PatternBuilder& Present(const std::string& feedback);
  PatternBuilder& Missing(const std::string& feedback);

  /// Finalizes the pattern; fails on invalid templates or edges.
  Result<Pattern> Build();

 private:
  Pattern pattern_;
  std::set<std::string> variables_;
  Status deferred_error_;
};

}  // namespace jfeed::core

#endif  // JFEED_CORE_PATTERN_H_
