#include "core/pattern_matcher.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "core/match_internal.h"

namespace jfeed::core {

namespace {

/// The legacy Algorithm-1 backtracker (MatchEngine::kLegacy): per-pattern
/// type scan for Φ, map-based ι/γ. Kept as the equivalence reference and
/// the ablation baseline for the indexed engine (indexed_matcher.cc); the
/// two must produce byte-identical canonical embeddings.
class Matcher {
 public:
  Matcher(const Pattern& pattern, const pdg::Epdg& epdg,
          const MatchOptions& options, MatchStats* stats)
      : pattern_(pattern), epdg_(epdg), options_(options), stats_(stats) {}

  std::vector<Embedding> Run() {
    // Step 1: compute the search space Φ (type-compatible graph nodes).
    const size_t n_pattern = pattern_.nodes.size();
    search_space_.resize(n_pattern);
    for (size_t u = 0; u < n_pattern; ++u) {
      for (size_t v = 0; v < epdg_.NodeCount(); ++v) {
        auto id = static_cast<graph::NodeId>(v);
        if (TypeMatches(pattern_.nodes[u].type, epdg_.NodeAt(id).type)) {
          search_space_[u].push_back(id);
        }
      }
      if (search_space_[u].empty()) return {};  // Some node cannot match.
    }
    // Precompute pattern adjacency for the edge checks and the ordering
    // heuristic.
    incident_edges_.resize(n_pattern);
    for (const auto& edge : pattern_.edges) {
      incident_edges_[edge.source].push_back(&edge);
      incident_edges_[edge.target].push_back(&edge);
    }
    matched_graph_nodes_.assign(epdg_.NodeCount(), false);
    // Step 2: backtracking search from the empty embedding.
    Embedding empty;
    Search(empty);
    if (stats_ != nullptr) stats_->truncated = truncated_;
    return internal::CanonicalizeEmbeddings(std::move(embeddings_));
  }

 private:
  /// Chooses the next unmatched pattern node: prefer nodes connected to the
  /// current embedding (so edge checks prune early), then smaller candidate
  /// sets. This is the "processing order of the pattern nodes" knob the
  /// paper mentions in Sec. IV.
  int PickNext(const Embedding& m) const {
    if (!options_.use_ordering_heuristic) {
      for (size_t u = 0; u < pattern_.nodes.size(); ++u) {
        if (m.iota.count(static_cast<int>(u)) == 0) {
          return static_cast<int>(u);
        }
      }
      return -1;
    }
    int best = -1;
    int best_connected = -1;
    size_t best_space = 0;
    for (size_t u = 0; u < pattern_.nodes.size(); ++u) {
      if (m.iota.count(static_cast<int>(u)) > 0) continue;
      int connected = 0;
      for (const auto* edge : incident_edges_[u]) {
        int other = edge->source == static_cast<int>(u) ? edge->target
                                                        : edge->source;
        if (m.iota.count(other) > 0) ++connected;
      }
      size_t space = search_space_[u].size();
      if (best == -1 || connected > best_connected ||
          (connected == best_connected && space < best_space)) {
        best = static_cast<int>(u);
        best_connected = connected;
        best_space = space;
      }
    }
    return best;
  }

  /// Definition 7 condition (2) for the newly added node: every pattern edge
  /// between u and an already-matched node must exist in the graph with the
  /// same type and orientation.
  bool EdgesConsistent(int u, graph::NodeId v, const Embedding& m) const {
    for (const auto* edge : incident_edges_[u]) {
      if (edge->source == u) {
        auto it = m.iota.find(edge->target);
        if (it != m.iota.end() &&
            !epdg_.HasEdge(v, it->second, edge->type)) {
          return false;
        }
      } else {
        auto it = m.iota.find(edge->source);
        if (it != m.iota.end() &&
            !epdg_.HasEdge(it->second, v, edge->type)) {
          return false;
        }
      }
    }
    return true;
  }

  /// γ mutation helpers: the bound-submission-variable multiset is
  /// maintained incrementally alongside γ, so the fresh-variable split per
  /// candidate no longer re-walks the whole binding.
  void Bind(const std::string& pattern_var, const std::string& value,
            Embedding& m) {
    m.gamma[pattern_var] = value;
    ++bound_value_counts_[value];
  }
  void Unbind(const std::string& pattern_var, Embedding& m) {
    auto it = m.gamma.find(pattern_var);
    if (it == m.gamma.end()) return;
    auto count = bound_value_counts_.find(it->second);
    if (count != bound_value_counts_.end() && --count->second == 0) {
      bound_value_counts_.erase(count);
    }
    m.gamma.erase(it);
  }
  bool ValueBound(const std::string& value) const {
    return bound_value_counts_.count(value) > 0;
  }

  void Search(Embedding& m) {
    if (truncated_) return;
    if (m.iota.size() == pattern_.nodes.size()) {
      embeddings_.push_back(m);
      if (embeddings_.size() >= options_.max_embeddings) truncated_ = true;
      return;
    }
    int u = PickNext(m);
    const PatternNode& pnode = pattern_.nodes[u];
    for (graph::NodeId v : search_space_[u]) {
      if (matched_graph_nodes_[v]) continue;  // ι must be injective.
      if (stats_ != nullptr && ++stats_->steps > options_.max_steps) {
        truncated_ = true;
        return;
      }
      if (!EdgesConsistent(u, v, m)) continue;
      const pdg::Node gnode = epdg_.NodeAt(v);

      // Variable matching: new pattern variables of this node against new
      // submission variables of the graph node (injections; DESIGN.md §3).
      std::set<std::string> node_vars = pnode.exact.variables();
      node_vars.insert(pnode.approx.variables().begin(),
                       pnode.approx.variables().end());
      std::set<std::string> fresh_pattern_vars;
      for (const auto& var : node_vars) {
        if (m.gamma.count(var) == 0) fresh_pattern_vars.insert(var);
      }
      std::set<std::string> fresh_graph_vars;
      gnode.ForEachVar([&](const std::string& var) {
        if (!ValueBound(var)) fresh_graph_vars.insert(var);
      });

      m.iota[u] = v;
      matched_graph_nodes_[v] = true;
      // AST backend (Sec. VII extension): structural unification yields the
      // candidate bindings directly; the regex approximate template remains
      // the incorrect-marking fallback.
      if (!pnode.ast_exact.empty()) {
        bool any_exact = false;
        if (gnode.ast != nullptr) {
          if (stats_ != nullptr) ++stats_->regex_checks;
          for (const VarBinding& binding :
               pnode.ast_exact.AllMatches(*gnode.ast, m.gamma)) {
            any_exact = true;
            for (const auto& [pv, sv] : binding) Bind(pv, sv, m);
            Search(m);
            for (const auto& kv : binding) Unbind(kv.first, m);
            if (truncated_) break;
          }
        }
        if (!any_exact && !pnode.approx.empty() && !truncated_) {
          for (const VarBinding& binding :
               EnumerateInjections(fresh_pattern_vars, fresh_graph_vars)) {
            for (const auto& [pv, sv] : binding) Bind(pv, sv, m);
            if (stats_ != nullptr) ++stats_->regex_checks;
            if (pnode.approx.Matches(gnode.content, m.gamma)) {
              m.incorrect_nodes.insert(u);
              Search(m);
              m.incorrect_nodes.erase(u);
            }
            for (const auto& kv : binding) Unbind(kv.first, m);
            if (truncated_) break;
          }
        }
        matched_graph_nodes_[v] = false;
        m.iota.erase(u);
        if (truncated_) return;
        continue;
      }
      for (const VarBinding& binding :
           EnumerateInjections(fresh_pattern_vars, fresh_graph_vars)) {
        for (const auto& [pv, sv] : binding) Bind(pv, sv, m);
        bool correct = false;
        bool matched = false;
        if (pnode.exact.empty()) {
          // A node without an exact template matches structurally.
          matched = true;
          correct = true;
        } else {
          if (stats_ != nullptr) ++stats_->regex_checks;
          if (pnode.exact.Matches(gnode.content, m.gamma)) {
            matched = true;
            correct = true;
          } else if (!pnode.approx.empty() &&
                     pnode.approx.Matches(gnode.content, m.gamma)) {
            if (stats_ != nullptr) ++stats_->regex_checks;
            matched = true;
            correct = false;
          }
        }
        if (matched) {
          if (!correct) m.incorrect_nodes.insert(u);
          Search(m);
          m.incorrect_nodes.erase(u);
        }
        for (const auto& kv : binding) Unbind(kv.first, m);
        if (truncated_) break;
      }
      matched_graph_nodes_[v] = false;
      m.iota.erase(u);
      if (truncated_) return;
    }
  }

  const Pattern& pattern_;
  const pdg::Epdg& epdg_;
  const MatchOptions& options_;
  MatchStats* stats_;
  std::vector<std::vector<graph::NodeId>> search_space_;
  std::vector<std::vector<const Pattern::Edge*>> incident_edges_;
  std::vector<bool> matched_graph_nodes_;
  /// Submission variables currently bound by γ, with multiplicity — kept in
  /// sync by Bind/Unbind.
  std::map<std::string, int> bound_value_counts_;
  std::vector<Embedding> embeddings_;
  bool truncated_ = false;
};

std::vector<Embedding> MatchPatternLegacy(const Pattern& pattern,
                                          const pdg::Epdg& epdg,
                                          const MatchOptions& options,
                                          MatchStats* stats) {
  MatchStats local_stats;
  Matcher matcher(pattern, epdg, options,
                  stats != nullptr ? stats : &local_stats);
  return matcher.Run();
}

}  // namespace

namespace internal {

std::vector<Embedding> CanonicalizeEmbeddings(std::vector<Embedding> all) {
  std::vector<Embedding> out;
  out.reserve(all.size());
  // ι encoded as raw bytes keys the groups exactly (not just by hash), so
  // the collapse rule is identical to the old all-pairs comparison.
  std::unordered_map<std::string, size_t> by_iota;
  by_iota.reserve(all.size());
  std::string key;
  for (auto& m : all) {
    key.clear();
    for (const auto& [u, v] : m.iota) {
      key.append(reinterpret_cast<const char*>(&u), sizeof(u));
      key.append(reinterpret_cast<const char*>(&v), sizeof(v));
    }
    auto [it, inserted] = by_iota.emplace(key, out.size());
    if (inserted) {
      out.push_back(std::move(m));
      continue;
    }
    Embedding& existing = out[it->second];
    if (m.incorrect_nodes.size() < existing.incorrect_nodes.size()) {
      existing = std::move(m);
    }
  }
  return out;
}

}  // namespace internal

std::vector<Embedding> MatchPattern(const Pattern& pattern,
                                    const pdg::Epdg& epdg,
                                    const MatchOptions& options,
                                    MatchStats* stats) {
  if (options.engine == MatchEngine::kLegacy) {
    return MatchPatternLegacy(pattern, epdg, options, stats);
  }
  pdg::MatchIndex index(epdg, options.scratch_arena);
  return internal::MatchPatternIndexed(pattern, epdg, index, options, stats);
}

std::vector<Embedding> MatchPattern(const Pattern& pattern,
                                    const pdg::Epdg& epdg,
                                    const pdg::MatchIndex& index,
                                    const MatchOptions& options,
                                    MatchStats* stats) {
  if (options.engine == MatchEngine::kLegacy) {
    return MatchPatternLegacy(pattern, epdg, options, stats);
  }
  return internal::MatchPatternIndexed(pattern, epdg, index, options, stats);
}

}  // namespace jfeed::core
