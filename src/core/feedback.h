#ifndef JFEED_CORE_FEEDBACK_H_
#define JFEED_CORE_FEEDBACK_H_

#include <string>
#include <vector>

namespace jfeed::core {

/// Classification of one feedback comment (Sec. V): Correct — the pattern or
/// constraint holds exactly; Incorrect — the pattern was recognized but some
/// node only matched its approximate expression (or the constraint is
/// violated); NotExpected — the occurrence count differs from t̄, so the
/// pattern is missing (or, for bad patterns with t̄ = 0, wrongly present).
enum class FeedbackKind { kCorrect, kIncorrect, kNotExpected };

const char* FeedbackKindName(FeedbackKind kind);

/// One personalized feedback comment delivered to the student.
struct FeedbackComment {
  FeedbackKind kind = FeedbackKind::kCorrect;
  std::string source_id;  ///< Pattern or constraint id that produced it.
  std::string method;     ///< Submission method the comment refers to.
  std::string message;    ///< Instantiated f_p / f_m / constraint feedback.
  /// Instantiated per-node feedback lines (f_c / f_i of matched nodes).
  std::vector<std::string> details;
};

/// The paper's cost function Λ (Equation 3): Correct = 1, Incorrect = 0.5,
/// NotExpected = 0. Algorithm 2 uses it to pick the best method combination.
double FeedbackScore(const std::vector<FeedbackComment>& comments);

/// Renders the comments as the text a student would see.
std::string RenderFeedback(const std::vector<FeedbackComment>& comments);

}  // namespace jfeed::core

#endif  // JFEED_CORE_FEEDBACK_H_
