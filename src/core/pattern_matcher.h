#ifndef JFEED_CORE_PATTERN_MATCHER_H_
#define JFEED_CORE_PATTERN_MATCHER_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/pattern.h"
#include "pdg/epdg.h"
#include "pdg/match_index.h"
#include "support/arena.h"

namespace jfeed::core {

/// An embedding m = (ι, γ) of a pattern in an extended program dependence
/// graph (Definition 7), extended with per-node correctness marks: a node
/// matched through its exact expression r is correct, one matched only
/// through the approximate expression r̂ is incorrect (Sec. IV).
struct Embedding {
  std::map<int, graph::NodeId> iota;  ///< Pattern node index -> graph node.
  VarBinding gamma;                   ///< Pattern variable -> submission variable.
  std::set<int> incorrect_nodes;      ///< Pattern nodes matched approximately.

  bool IsFullyCorrect() const { return incorrect_nodes.empty(); }
};

/// Which Algorithm-1 implementation runs. Both produce byte-identical
/// canonical embeddings (the equivalence suite gates this); they differ in
/// cost only.
enum class MatchEngine {
  /// Index-driven flat-state engine: candidates come from the shared
  /// pdg::MatchIndex type buckets, signature-pruned before backtracking;
  /// the search state is allocation-free per step; binding-independent
  /// template checks are memoized per graph node.
  kIndexed,
  /// The original per-pattern type-scan backtracker, kept as the
  /// equivalence reference and the ablation baseline.
  kLegacy,
};

/// Tuning knobs for the backtracking search.
struct MatchOptions {
  /// Upper bound on embeddings gathered before the search stops. Subgraph
  /// matching is NP-hard (Sec. IV); intro-sized graphs never get close to
  /// this, but the bound keeps adversarial inputs from exploding.
  size_t max_embeddings = 256;
  /// Upper bound on backtracking steps (candidate nodes tried).
  int64_t max_steps = 1'000'000;
  /// Pick the next pattern node by connectivity to the partial embedding
  /// and candidate-set size (Sec. IV: "the performance depends on the size
  /// of the search space and the processing order of the pattern nodes").
  /// Disabled, nodes are processed in declaration order — the ablation
  /// bench quantifies the difference. Both engines rank by the *type
  /// bucket* size (pre-pruning) so their exploration order — and therefore
  /// their canonical output — stays identical.
  bool use_ordering_heuristic = true;
  /// Engine selection; kIndexed is the production default.
  MatchEngine engine = MatchEngine::kIndexed;
  /// Bump arena for the indexed engine's per-run state (plans, memo,
  /// emitted embeddings). Null means the engine creates a private arena
  /// per call; the grading pipeline passes its pooled per-worker arena,
  /// reset between submissions, so steady-state matching performs no
  /// general-purpose allocations. The caller must not Reset() it while a
  /// match runs. Ignored by the legacy engine.
  Arena* scratch_arena = nullptr;
};

/// Statistics of one PatternMatching run (exposed for benchmarks).
struct MatchStats {
  int64_t steps = 0;            ///< Candidate (u, v) pairs tried.
  int64_t regex_checks = 0;     ///< Variable-combination template checks.
  /// Candidates dropped by degree-signature pruning before backtracking
  /// ever considered them (indexed engine only).
  int64_t candidates_pruned = 0;
  /// Template checks answered by the binding-independent memo instead of a
  /// regex execution (indexed engine only).
  int64_t memo_hits = 0;
  bool truncated = false;       ///< Search stopped at a limit.

  /// Adds `other`'s counters into this one (used to aggregate the total
  /// matching cost of a submission across patterns and variants).
  void Accumulate(const MatchStats& other) {
    steps += other.steps;
    regex_checks += other.regex_checks;
    candidates_pruned += other.candidates_pruned;
    memo_hits += other.memo_hits;
    truncated = truncated || other.truncated;
  }
};

/// Algorithm 1 (PatternMatching): computes the embeddings of `pattern` in
/// `epdg`. Deviations from the paper's pseudo-code are documented in
/// DESIGN.md §3: injective (not bijective) variable combinations, and edge
/// verification in both orientations.
///
/// The result is canonicalized: embeddings with the same ι are collapsed to
/// the one with the fewest incorrect nodes (ties broken by γ order), so the
/// embedding count means "distinct placements of the pattern", which is what
/// Algorithm 2 compares against the expected-occurrence map t̄.
///
/// With options.engine == kIndexed this overload builds a throw-away
/// pdg::MatchIndex for `epdg`; callers matching many patterns against the
/// same graph should build the index once and use the overload below.
std::vector<Embedding> MatchPattern(const Pattern& pattern,
                                    const pdg::Epdg& epdg,
                                    const MatchOptions& options = {},
                                    MatchStats* stats = nullptr);

/// Same, with a caller-owned match index (built once per EPDG and shared
/// across all patterns, variants, and method candidates — DESIGN.md §3a).
/// `index` must have been built from `epdg`. Ignored when options.engine is
/// kLegacy.
std::vector<Embedding> MatchPattern(const Pattern& pattern,
                                    const pdg::Epdg& epdg,
                                    const pdg::MatchIndex& index,
                                    const MatchOptions& options = {},
                                    MatchStats* stats = nullptr);

}  // namespace jfeed::core

#endif  // JFEED_CORE_PATTERN_MATCHER_H_
