#include "core/submission_matcher.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <set>

#include "javalang/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pdg/epdg.h"
#include "support/fault.h"

namespace jfeed::core {

size_t AssignmentSpec::PatternCount() const {
  std::set<std::string> ids;
  for (const auto& method : methods) {
    for (const auto& use : method.patterns) {
      if (use.pattern != nullptr) ids.insert(use.pattern->id);
    }
  }
  return ids.size();
}

size_t AssignmentSpec::ConstraintCount() const {
  size_t n = 0;
  for (const auto& method : methods) n += method.constraints.size();
  return n;
}

bool SubmissionFeedback::AllCorrect() const {
  if (!matched) return false;
  for (const auto& c : comments) {
    if (c.kind != FeedbackKind::kCorrect) return false;
  }
  return !comments.empty();
}

namespace {

/// ProvideFeedback (Sec. V): turns the embeddings of one pattern into a
/// feedback comment according to the expected occurrence count.
FeedbackComment ProvideFeedback(const std::vector<Embedding>& embeddings,
                                const Pattern& pattern, int expected_count,
                                const std::string& method_name,
                                const std::vector<int>& also_accept = {}) {
  FeedbackComment comment;
  comment.source_id = pattern.id;
  comment.method = method_name;
  int count = static_cast<int>(embeddings.size());
  bool accepted = count == expected_count;
  for (int alt : also_accept) accepted |= count == alt;
  if (!accepted) {
    // Missing pattern — or, for bad patterns (t̄ = 0), wrongly present.
    comment.kind = FeedbackKind::kNotExpected;
    comment.message = InstantiateFeedback(pattern.feedback_missing, {});
    return comment;
  }
  if (expected_count == 0) {
    // A bad pattern that is correctly absent. The pattern's presence
    // feedback describes the pattern being there, so a generic absence
    // message reads better.
    comment.kind = FeedbackKind::kCorrect;
    comment.message =
        "Good: '" + pattern.name + "' does not occur in your submission";
    return comment;
  }
  bool all_correct = true;
  for (const auto& m : embeddings) {
    if (!m.IsFullyCorrect()) all_correct = false;
  }
  comment.kind =
      all_correct ? FeedbackKind::kCorrect : FeedbackKind::kIncorrect;
  comment.message =
      InstantiateFeedback(pattern.feedback_present, embeddings[0].gamma);
  size_t templated_nodes = 0;
  for (const auto& node : pattern.nodes) {
    if (!node.feedback_correct.empty() || !node.feedback_incorrect.empty()) {
      ++templated_nodes;
    }
  }
  comment.details.reserve(embeddings.size() * templated_nodes);
  for (const auto& m : embeddings) {
    for (size_t u = 0; u < pattern.nodes.size(); ++u) {
      const PatternNode& node = pattern.nodes[u];
      bool incorrect = m.incorrect_nodes.count(static_cast<int>(u)) > 0;
      const std::string& tmpl =
          incorrect ? node.feedback_incorrect : node.feedback_correct;
      if (tmpl.empty()) continue;
      comment.details.push_back(InstantiateFeedback(tmpl, m.gamma));
    }
  }
  return comment;
}

/// Feedback for one constraint: evaluates it once (witness feedback is
/// rendered during that same evaluation) and folds the outcome into a
/// comment.
FeedbackComment ConstraintFeedback(const Constraint& constraint,
                                   const pdg::Epdg& epdg,
                                   const EmbeddingSets& embeddings,
                                   const std::set<std::string>& not_expected,
                                   const std::string& method_name) {
  FeedbackComment comment;
  comment.source_id = constraint.id;
  comment.method = method_name;
  ConstraintOutcome outcome = CheckConstraintFeedback(
      constraint, epdg, embeddings, not_expected, &comment.message);
  switch (outcome) {
    case ConstraintOutcome::kFulfilled:
      comment.kind = FeedbackKind::kCorrect;
      break;
    case ConstraintOutcome::kViolated:
      comment.kind = FeedbackKind::kIncorrect;
      comment.message = InstantiateFeedback(constraint.feedback_fail, {});
      break;
    case ConstraintOutcome::kNotApplicable:
      comment.kind = FeedbackKind::kNotExpected;
      comment.message = InstantiateFeedback(constraint.feedback_fail, {});
      break;
  }
  return comment;
}

/// Enumerates injective assignments of expected methods (indexes into
/// `spec.methods`) to submission methods (indexes into `graphs`).
void EnumerateAssignments(size_t expected_count, size_t available_count,
                          size_t max_combinations,
                          std::vector<std::vector<size_t>>* out) {
  std::vector<size_t> current;
  std::vector<bool> used(available_count, false);
  std::function<void()> recurse = [&]() {
    if (out->size() >= max_combinations) return;
    if (current.size() == expected_count) {
      out->push_back(current);
      return;
    }
    for (size_t h = 0; h < available_count; ++h) {
      if (used[h]) continue;
      used[h] = true;
      current.push_back(h);
      recurse();
      current.pop_back();
      used[h] = false;
    }
  };
  recurse();
}

/// The shared body of MatchSubmission / MatchSubmissionGraphs, operating on
/// per-method graph refs so the cold path (all stores null) and the
/// incremental path run the exact same evaluation order.
Result<SubmissionFeedback> MatchGraphsImpl(
    const AssignmentSpec& spec, std::span<const MethodGraphRef> graphs,
    const SubmissionMatchOptions& options) {
  // One match index per EPDG, built on first use and shared across every
  // pattern, variant, and method-candidate evaluation below — the
  // per-pattern type scan and signature data are graph properties, not
  // pattern properties. Lazy so a submission whose cells are all reused
  // from cache never pays for an index it won't consult.
  std::vector<std::unique_ptr<pdg::MatchIndex>> indexes(graphs.size());
  auto index_for = [&](size_t graph_index) -> const pdg::MatchIndex& {
    if (!indexes[graph_index]) {
      obs::Span index_span("match.index");
      indexes[graph_index] = std::make_unique<pdg::MatchIndex>(
          *graphs[graph_index].graph, options.match.scratch_arena);
    }
    return *indexes[graph_index];
  };
  // Each MatchPattern run gets a fresh stats block so max_steps stays a
  // per-pattern bound, then folds into the demanding cell's stats — the
  // unit that can be reused across resubmissions.
  auto match_one = [&](const Pattern& pattern, size_t graph_index,
                       MatchStats* sink) {
    MatchStats call_stats;
    std::vector<Embedding> m =
        options.match.engine == MatchEngine::kIndexed
            ? MatchPattern(pattern, *graphs[graph_index].graph,
                           index_for(graph_index), options.match, &call_stats)
            : MatchPattern(pattern, *graphs[graph_index].graph, options.match,
                           &call_stats);
    sink->Accumulate(call_stats);
    return m;
  };

  SubmissionFeedback best;
  if (graphs.size() < spec.methods.size()) {
    // Fewer methods than expected: no combination adheres to the spec.
    return best;
  }

  // Prefer exact header-name matches first: when the assignment enforces
  // method headers (the common case), the first combination evaluated is
  // the intended one and ties resolve toward it.
  std::vector<std::vector<size_t>> assignments;
  {
    std::vector<size_t> by_name;
    std::set<size_t> taken;
    bool all_found = true;
    for (const auto& method : spec.methods) {
      bool found = false;
      for (size_t h = 0; h < graphs.size(); ++h) {
        if (taken.count(h) == 0 &&
            graphs[h].graph->method_name() == method.expected_name) {
          by_name.push_back(h);
          taken.insert(h);
          found = true;
          break;
        }
      }
      if (!found) {
        all_found = false;
        break;
      }
    }
    if (all_found) assignments.push_back(std::move(by_name));
  }
  std::vector<std::vector<size_t>> all;
  EnumerateAssignments(spec.methods.size(), graphs.size(),
                       options.max_combinations, &all);
  for (auto& a : all) {
    if (assignments.empty() || a != assignments.front()) {
      assignments.push_back(std::move(a));
    }
  }

  // Step 2: evaluate every combination and keep the best Λ score.
  //
  // The per-(expected-method, submission-method) evaluation — pattern
  // matches, variant fallbacks, constraints, and their feedback comments —
  // depends only on that pair, never on the rest of the combination. So
  // each pair ("cell") is evaluated at most once, lazily, and every
  // combination is scored from its cells' partial scores. FeedbackScore
  // sums exact multiples of 0.5, so per-cell partial sums reproduce the
  // concatenated-list score bit for bit; only the winning combination's
  // comment list is materialized, by moving its cells' comments. A graph
  // ref that carries a MethodCellStore short-circuits the computation with
  // the stored value and contributes newly computed cells back.
  struct Cell {
    bool evaluated = false;
    MethodCellValue value;
  };
  std::vector<Cell> cells(spec.methods.size() * graphs.size());
  auto cell_at = [&](size_t qi, size_t graph_index) -> Cell& {
    Cell& cell = cells[qi * graphs.size() + graph_index];
    if (cell.evaluated) return cell;
    cell.evaluated = true;
    MethodCellStore* store = graphs[graph_index].cells;
    if (store != nullptr && store->Find(qi, &cell.value)) return cell;
    const MethodSpec& q = spec.methods[qi];
    const pdg::Epdg& epdg = *graphs[graph_index].graph;
    std::vector<FeedbackComment>& comments = cell.value.comments;
    comments.reserve(q.patterns.size() + q.constraints.size());

    // Step 2.1: match patterns, accumulating embeddings (the paper's m̄).
    EmbeddingSets embedding_sets;
    std::set<std::string> not_expected;
    for (const auto& use : q.patterns) {
      if (use.pattern == nullptr) continue;
      std::vector<Embedding> m =
          match_one(*use.pattern, graph_index, &cell.value.stats);
      FeedbackComment comment =
          ProvideFeedback(m, *use.pattern, use.expected_count,
                          epdg.method_name(), use.also_accept_counts);
      // Pattern variations (Sec. VII): when the primary realization is
      // missing, accept an alternative realization of the same
      // semantics.
      if (comment.kind == FeedbackKind::kNotExpected &&
          use.expected_count > 0) {
        for (const PatternVariant& variant : use.variants) {
          if (variant.pattern == nullptr) continue;
          std::vector<Embedding> vm =
              match_one(*variant.pattern, graph_index, &cell.value.stats);
          if (static_cast<int>(vm.size()) != use.expected_count) continue;
          comment = ProvideFeedback(vm, *variant.pattern,
                                    use.expected_count,
                                    epdg.method_name());
          comment.source_id = use.pattern->id;
          comment.message += " (accepted variation: " +
                             variant.pattern->name + ")";
          // Re-index the embeddings onto the primary pattern's slots so
          // constraints written against the primary keep working.
          m.clear();
          for (const Embedding& original : vm) {
            Embedding remapped;
            for (const auto& [variant_var, value] : original.gamma) {
              auto renamed = variant.var_map.find(variant_var);
              remapped.gamma[renamed != variant.var_map.end()
                                 ? renamed->second
                                 : variant_var] = value;
            }
            for (const auto& [slot, variant_node] : variant.slot_map) {
              auto it = original.iota.find(variant_node);
              if (it != original.iota.end()) {
                remapped.iota[slot] = it->second;
              }
              if (original.incorrect_nodes.count(variant_node) > 0) {
                remapped.incorrect_nodes.insert(slot);
              }
            }
            m.push_back(std::move(remapped));
          }
          break;
        }
      }
      if (comment.kind == FeedbackKind::kNotExpected) {
        not_expected.insert(use.pattern->id);
      }
      comments.push_back(std::move(comment));
      embedding_sets[use.pattern->id] = std::move(m);
    }
    // Step 2.2: match constraints.
    for (const auto& constraint : q.constraints) {
      comments.push_back(ConstraintFeedback(constraint, epdg, embedding_sets,
                                            not_expected,
                                            epdg.method_name()));
    }
    cell.value.score = FeedbackScore(comments);
    // Publish the freshly computed cell (a copy: the winner materialization
    // below moves our local comments) before anyone can observe it.
    if (store != nullptr) store->Insert(qi, cell.value);
    return cell;
  };

  // Step 2.3: score every combination, keep the first one with the best
  // score (ties resolve toward the earlier combination, exactly as when
  // each combination carried its own comment list).
  const std::vector<size_t>* best_assignment = nullptr;
  for (const auto& assignment : assignments) {
    double score = 0.0;
    for (size_t qi = 0; qi < spec.methods.size(); ++qi) {
      score += cell_at(qi, assignment[qi]).value.score;
    }
    if (!best.matched || score > best.score) {
      best.matched = true;
      best.score = score;
      best_assignment = &assignment;
    }
  }

  // Materialize the winner: concatenate its cells' comments (each cell
  // appears in the winning combination at most once, so moving is safe)
  // and record its method mapping.
  if (best_assignment != nullptr) {
    size_t total = 0;
    for (size_t qi = 0; qi < spec.methods.size(); ++qi) {
      total += cell_at(qi, (*best_assignment)[qi]).value.comments.size();
    }
    best.comments.reserve(total);
    for (size_t qi = 0; qi < spec.methods.size(); ++qi) {
      const size_t graph_index = (*best_assignment)[qi];
      Cell& cell = cell_at(qi, graph_index);
      for (auto& comment : cell.value.comments) {
        best.comments.push_back(std::move(comment));
      }
      best.method_assignment[spec.methods[qi].expected_name] =
          std::string(graphs[graph_index].graph->method_name());
    }
  }
  // Total Algorithm-1 cost of this call: the demanded-cell set is
  // deterministic over (spec, graph contents), and a reused cell carries
  // the stats of the run that computed it, so cold and warm runs aggregate
  // identical totals — the equivalence the golden suite pins down.
  MatchStats total_stats;
  for (const Cell& cell : cells) {
    if (cell.evaluated) total_stats.Accumulate(cell.value.stats);
  }
  best.match_stats = total_stats;

  // Aggregate Algorithm-1 cost of this submission, as distributions: step
  // and regex-check counts are the deterministic cost model the bench
  // regression gate tracks; prune/memo counters quantify how much work the
  // index saved; truncation marks adversarial graphs that hit a limit.
  auto& registry = obs::Registry::Global();
  static obs::Histogram* steps_hist = registry.GetHistogram(
      "jfeed_match_steps", "Algorithm-1 backtracking steps per submission");
  static obs::Histogram* regex_hist = registry.GetHistogram(
      "jfeed_match_regex_checks",
      "Variable-combination template checks per submission");
  static obs::Counter* pruned_total = registry.GetCounter(
      "jfeed_match_candidates_pruned_total",
      "Candidates dropped by degree-signature pruning");
  static obs::Counter* memo_total = registry.GetCounter(
      "jfeed_match_memo_hits_total",
      "Template checks answered by the binding-independent memo");
  static obs::Counter* truncated_total = registry.GetCounter(
      "jfeed_match_truncated_total",
      "Submissions whose pattern search stopped at a step/embedding limit");
  steps_hist->Record(total_stats.steps);
  regex_hist->Record(total_stats.regex_checks);
  pruned_total->Increment(total_stats.candidates_pruned);
  memo_total->Increment(total_stats.memo_hits);
  if (total_stats.truncated) truncated_total->Increment();
  return best;
}

}  // namespace

bool MethodCellStore::Find(size_t qi, MethodCellValue* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(qi);
  if (it == cells_.end()) return false;
  *out = it->second;
  return true;
}

void MethodCellStore::Insert(size_t qi, MethodCellValue value) {
  std::lock_guard<std::mutex> lock(mu_);
  // First writer wins: concurrent computations of the same cell produce
  // equivalent values, and keeping the published one means every later
  // reader sees bit-identical comments.
  cells_.emplace(qi, std::move(value));
}

size_t MethodCellStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

Result<SubmissionFeedback> MatchSubmission(
    const AssignmentSpec& spec, const java::CompilationUnit& submission,
    const SubmissionMatchOptions& options) {
  JFEED_FAULT_POINT(fault::points::kMatcher);
  // Step 1: extract the EPDG of every submission method, on the pooled
  // memory when the caller supplies one.
  JFEED_ASSIGN_OR_RETURN(std::vector<pdg::Epdg> graphs,
                         pdg::BuildAllEpdgs(submission, options.epdg_memory));
  std::vector<MethodGraphRef> refs;
  refs.reserve(graphs.size());
  for (const auto& g : graphs) refs.push_back({&g, nullptr});
  return MatchGraphsImpl(spec, refs, options);
}

Result<SubmissionFeedback> MatchSubmissionGraphs(
    const AssignmentSpec& spec, std::span<const MethodGraphRef> graphs,
    const SubmissionMatchOptions& options) {
  JFEED_FAULT_POINT(fault::points::kMatcher);
  return MatchGraphsImpl(spec, graphs, options);
}

Result<SubmissionFeedback> MatchSubmissionSource(
    const AssignmentSpec& spec, const std::string& source,
    const SubmissionMatchOptions& options) {
  JFEED_ASSIGN_OR_RETURN(java::CompilationUnit unit, java::Parse(source));
  return MatchSubmission(spec, unit, options);
}

}  // namespace jfeed::core
