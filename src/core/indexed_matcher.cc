// The index-driven, flat-state Algorithm-1 engine (MatchEngine::kIndexed).
//
// Four levers over the legacy backtracker (DESIGN.md §3a, §3c):
//   1. Candidates come from the shared pdg::MatchIndex: type buckets
//      replace the per-pattern O(|P|·|G|) type scan, and degree-signature
//      pruning drops candidates that cannot host a pattern node's incident
//      edges *before* backtracking ever tries them.
//   2. The search state is allocation-free per step: ι is a flat vector,
//      γ is a binding stack with O(1) undo, per-node variable sets are
//      precomputed once, and regex text is assembled into a reused scratch
//      buffer.
//   3. Binding-independent template checks (templates that use no pattern
//      variables) are memoized per (pattern node, graph node), so repeated
//      visits under different partial embeddings cost one lookup.
//   4. Every per-run structure — plans, candidate lists, the memo, the
//      emitted embeddings — lives in a bump arena (options.scratch_arena,
//      pooled per worker and reset between submissions), and embeddings are
//      deduplicated *at emit time* against flat ι slices, so the map/set
//      Embedding representation is materialized only for the few survivors.
//
// Exploration order is kept bit-identical to the legacy engine (ordering
// heuristic ranks by *unpruned* type-bucket size; candidates iterate in
// ascending node id; injections enumerate in the same lexicographic order),
// and the emit-time dedup applies exactly the CanonicalizeEmbeddings
// collapse rule (first ι occurrence keeps its position; a later duplicate
// replaces it only with strictly fewer incorrect nodes), so both engines
// emit the same canonical embedding sequence and the equivalence suite can
// require byte-identical output.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/match_internal.h"
#include "support/arena.h"

namespace jfeed::core::internal {

namespace {

/// The substituted-regex assembly buffer, shared by every matcher run on
/// this thread (the matcher itself is rebuilt per pattern; the scratch
/// capacity is the part worth keeping).
std::string& RegexScratch() {
  static thread_local std::string scratch;
  return scratch;
}

/// γ as a push/pop stack of (pattern variable, submission variable)
/// pointers. Lookups are linear scans — intro-sized patterns bind a
/// handful of variables, so this beats a node-allocating map. Doubles as
/// the incremental bound-submission-variable set: BoundValue scans the
/// value column instead of rebuilding a set per candidate.
class GammaStack final : public BindingLookup {
 public:
  struct Entry {
    const std::string* var;
    const std::string* value;
  };

  explicit GammaStack(Arena* arena) : entries_(arena) {}

  const std::string* Find(const std::string& pattern_var) const override {
    for (const auto& e : entries_) {
      if (*e.var == pattern_var) return e.value;
    }
    return nullptr;
  }

  bool BoundValue(const std::string& submission_var) const {
    for (const auto& e : entries_) {
      if (*e.value == submission_var) return true;
    }
    return false;
  }

  void Push(const std::string* var, const std::string* value) {
    entries_.push_back({var, value});
  }
  size_t Mark() const { return entries_.size(); }
  void PopTo(size_t mark) { entries_.resize(mark); }

  size_t size() const { return entries_.size(); }
  const Entry& entry(size_t i) const { return entries_[i]; }

  VarBinding ToMap() const {
    VarBinding out;
    for (const auto& e : entries_) out[*e.var] = *e.value;
    return out;
  }

 private:
  ArenaVec<Entry> entries_;
};

pdg::NodeType ToGraphType(PatternNodeType type) {
  switch (type) {
    case PatternNodeType::kAssign: return pdg::NodeType::kAssign;
    case PatternNodeType::kBreak: return pdg::NodeType::kBreak;
    case PatternNodeType::kCall: return pdg::NodeType::kCall;
    case PatternNodeType::kCond: return pdg::NodeType::kCond;
    case PatternNodeType::kDecl: return pdg::NodeType::kDecl;
    case PatternNodeType::kReturn: return pdg::NodeType::kReturn;
    case PatternNodeType::kUntyped: break;
  }
  return pdg::NodeType::kAssign;  // Unreachable; callers gate on kUntyped.
}

class IndexedMatcher {
 public:
  IndexedMatcher(const Pattern& pattern, const pdg::Epdg& epdg,
                 const pdg::MatchIndex& index, const MatchOptions& options,
                 MatchStats* stats, Arena* arena)
      : pattern_(pattern),
        epdg_(epdg),
        index_(index),
        options_(options),
        stats_(stats),
        arena_(arena),
        gamma_(arena),
        plans_(arena),
        iota_(arena),
        matched_graph_(arena),
        incorrect_(arena),
        memo_(arena),
        iota_store_(arena),
        incorrect_store_(arena),
        gamma_store_(arena),
        survivors_(arena) {}

  std::vector<Embedding> Run() {
    const size_t n_pattern = pattern_.nodes.size();
    n_graph_ = epdg_.NodeCount();
    plans_.resize(n_pattern);
    if (!BuildPlans()) return {};
    iota_.resize(n_pattern, graph::kInvalidNode);
    matched_graph_.resize(n_graph_, 0);
    incorrect_.resize(n_pattern, 0);
    depth_ = 0;
    Search();
    if (stats_ != nullptr) stats_->truncated = truncated_;
    return MaterializeSurvivors();
  }

 private:
  struct EdgeCheck {
    int other;           ///< The pattern node on the far end.
    pdg::EdgeType type;
    bool out;            ///< True when this node is the edge's source.
  };

  /// Everything precomputed for one pattern node, plus its per-candidate
  /// scratch. Scratch-in-plan is safe because a pattern node sits on the
  /// DFS path at most once (ι is a function of pattern nodes). All members
  /// are arena vectors, so a NodePlan is trivially copyable and the plan
  /// array itself can live in the arena.
  struct NodePlan {
    ArenaVec<graph::NodeId> candidates;  ///< Signature-pruned, ascending.
    size_t type_space = 0;  ///< Unpruned bucket size (ordering parity).
    ArenaVec<EdgeCheck> edges;
    /// Sorted, deduplicated variables of exact ∪ approx (pointers into the
    /// pattern's own variable sets).
    ArenaVec<const std::string*> vars;
    bool exact_const = false;   ///< exact is non-empty and variable-free.
    bool approx_const = false;  ///< approx is non-empty and variable-free.
    // Per-candidate scratch, reused without reallocation:
    ArenaVec<const std::string*> fresh_pattern;
    ArenaVec<const std::string*> fresh_graph;
    ArenaVec<char> used;  ///< Injection targets taken at this node.
  };

  /// One emitted embedding that survived dedup: flat slices into the
  /// parallel stores below. γ strings are arena copies, so survivors stay
  /// valid even when a binding came from a temporary (the AST unifier's
  /// result maps die with their loop iteration).
  struct Survivor {
    uint32_t iota_begin;
    uint32_t incorrect_begin;
    uint32_t gamma_begin;
    uint32_t gamma_count;
    uint32_t incorrect_count;
  };

  struct GammaEntry {
    std::string_view var, value;
  };

  bool BuildPlans() {
    for (size_t u = 0; u < pattern_.nodes.size(); ++u) {
      NodePlan& plan = plans_[u];
      plan.candidates.Attach(arena_);
      plan.edges.Attach(arena_);
      plan.vars.Attach(arena_);
      plan.fresh_pattern.Attach(arena_);
      plan.fresh_graph.Attach(arena_);
      plan.used.Attach(arena_);
      const PatternNode& pnode = pattern_.nodes[u];
      // Candidate set: the node-type bucket, then signature pruning.
      const std::span<const graph::NodeId> bucket =
          pnode.type == PatternNodeType::kUntyped
              ? index_.AllNodes()
              : index_.Bucket(ToGraphType(pnode.type));
      plan.type_space = bucket.size();
      pdg::DegreeSignature need = RequiredSignature(static_cast<int>(u));
      for (graph::NodeId v : bucket) {
        if (index_.Signature(v).Covers(need)) {
          plan.candidates.push_back(v);
        } else if (stats_ != nullptr) {
          ++stats_->candidates_pruned;
        }
      }
      if (plan.candidates.empty()) return false;  // No embedding possible.
      // Incident edges (declaration order, like the legacy matcher).
      for (const auto& edge : pattern_.edges) {
        if (edge.source == static_cast<int>(u)) {
          plan.edges.push_back({edge.target, edge.type, true});
        }
        if (edge.target == static_cast<int>(u)) {
          plan.edges.push_back({edge.source, edge.type, false});
        }
      }
      // Variable sets, merged once instead of per candidate pair. The two
      // source sets are each name-sorted and the overlap check keeps them
      // disjoint, so one sort yields the dedup'd union.
      for (const auto& var : pnode.exact.variables()) {
        plan.vars.push_back(&var);
      }
      for (const auto& var : pnode.approx.variables()) {
        if (pnode.exact.variables().count(var) == 0) {
          plan.vars.push_back(&var);
        }
      }
      std::sort(plan.vars.begin(), plan.vars.end(),
                [](const std::string* a, const std::string* b) {
                  return *a < *b;
                });
      plan.exact_const =
          !pnode.exact.empty() && pnode.exact.variables().empty();
      plan.approx_const =
          !pnode.approx.empty() && pnode.approx.variables().empty();
      if ((plan.exact_const || plan.approx_const) && memo_.empty()) {
        memo_.resize(pattern_.nodes.size() * n_graph_, 0);
      }
    }
    return true;
  }

  /// The degree signature pattern node `u` demands of any candidate.
  /// Distinct incident pattern edges with distinct far endpoints map to
  /// distinct graph edges under an injective ι, so the candidate needs at
  /// least that many edges per (direction, type) — and per neighbor type
  /// for typed far endpoints. Duplicate pattern edges (same endpoints and
  /// type) collapse onto one graph edge and are deduplicated here;
  /// self-loops never constrain the partial-embedding checks (the far
  /// endpoint is unmatched when the node is placed) and are skipped for
  /// parity with the legacy engine.
  pdg::DegreeSignature RequiredSignature(int u) const {
    pdg::DegreeSignature need;
    // (etype, other) pairs already counted, per direction. Pattern edge
    // lists are tiny, so linear membership scans beat a set.
    struct Seen {
      int etype, other;
    };
    ArenaVec<Seen> seen_out(arena_), seen_in(arena_);
    auto insert_new = [](ArenaVec<Seen>& seen, Seen key) {
      for (const auto& k : seen) {
        if (k.etype == key.etype && k.other == key.other) return false;
      }
      seen.push_back(key);
      return true;
    };
    for (const auto& edge : pattern_.edges) {
      if (edge.source == edge.target) continue;
      int etype = static_cast<int>(edge.type);
      if (edge.source == u && insert_new(seen_out, {etype, edge.target})) {
        PatternNodeType t = pattern_.nodes[edge.target].type;
        need.AddEdge(/*dir=*/0, etype,
                     t == PatternNodeType::kUntyped
                         ? -1
                         : static_cast<int>(ToGraphType(t)));
      }
      if (edge.target == u && insert_new(seen_in, {etype, edge.source})) {
        PatternNodeType t = pattern_.nodes[edge.source].type;
        need.AddEdge(/*dir=*/1, etype,
                     t == PatternNodeType::kUntyped
                         ? -1
                         : static_cast<int>(ToGraphType(t)));
      }
    }
    return need;
  }

  /// Legacy PickNext, ranking by the unpruned type-bucket size so both
  /// engines explore pattern nodes in the same order.
  int PickNext() const {
    const size_t n = pattern_.nodes.size();
    if (!options_.use_ordering_heuristic) {
      for (size_t u = 0; u < n; ++u) {
        if (iota_[u] == graph::kInvalidNode) return static_cast<int>(u);
      }
      return -1;
    }
    int best = -1;
    int best_connected = -1;
    size_t best_space = 0;
    for (size_t u = 0; u < n; ++u) {
      if (iota_[u] != graph::kInvalidNode) continue;
      int connected = 0;
      for (const auto& ec : plans_[u].edges) {
        if (iota_[ec.other] != graph::kInvalidNode) ++connected;
      }
      size_t space = plans_[u].type_space;
      if (best == -1 || connected > best_connected ||
          (connected == best_connected && space < best_space)) {
        best = static_cast<int>(u);
        best_connected = connected;
        best_space = space;
      }
    }
    return best;
  }

  bool EdgesConsistent(const NodePlan& plan, graph::NodeId v) const {
    for (const auto& ec : plan.edges) {
      graph::NodeId other = iota_[ec.other];
      if (other == graph::kInvalidNode) continue;
      bool present = ec.out ? epdg_.HasEdge(v, other, ec.type)
                            : epdg_.HasEdge(other, v, ec.type);
      if (!present) return false;
    }
    return true;
  }

  /// Splits the node's variables and the graph node's variables into the
  /// fresh (unbound) subsets — X and Y of Algorithm 1 line 18 — using the
  /// precomputed per-node sets and the incremental γ stack.
  void ComputeFresh(NodePlan& plan, const pdg::Node& gnode) {
    plan.fresh_pattern.clear();
    for (const std::string* var : plan.vars) {
      if (gamma_.Find(*var) == nullptr) plan.fresh_pattern.push_back(var);
    }
    plan.fresh_graph.clear();
    gnode.ForEachVar([&](const std::string& var) {
      if (!gamma_.BoundValue(var)) plan.fresh_graph.push_back(&var);
    });
  }

  /// Exact-template check with the binding-independent memo. Safe w.r.t.
  /// γ: the memo is consulted only when the template names no pattern
  /// variables, in which case Matches() never reads γ.
  bool CheckExact(const NodePlan& plan, size_t u, graph::NodeId v,
                  const PatternNode& pnode, const pdg::Node& gnode) {
    if (plan.exact_const) {
      uint8_t& slot = memo_[u * n_graph_ + v];
      if ((slot & 0x3) != 0) {
        if (stats_ != nullptr) ++stats_->memo_hits;
        return (slot & 0x3) == 1;
      }
      if (stats_ != nullptr) ++stats_->regex_checks;
      bool ok = pnode.exact.Matches(gnode.content, gamma_, &RegexScratch());
      slot = static_cast<uint8_t>((slot & ~0x3) | (ok ? 1 : 2));
      return ok;
    }
    if (stats_ != nullptr) ++stats_->regex_checks;
    return pnode.exact.Matches(gnode.content, gamma_, &RegexScratch());
  }

  bool CheckApprox(const NodePlan& plan, size_t u, graph::NodeId v,
                   const PatternNode& pnode, const pdg::Node& gnode) {
    if (plan.approx_const) {
      uint8_t& slot = memo_[u * n_graph_ + v];
      if ((slot & 0xC) != 0) {
        if (stats_ != nullptr) ++stats_->memo_hits;
        return (slot & 0xC) == 0x4;
      }
      if (stats_ != nullptr) ++stats_->regex_checks;
      bool ok = pnode.approx.Matches(gnode.content, gamma_, &RegexScratch());
      slot = static_cast<uint8_t>((slot & ~0xC) | (ok ? 0x4 : 0x8));
      return ok;
    }
    if (stats_ != nullptr) ++stats_->regex_checks;
    return pnode.approx.Matches(gnode.content, gamma_, &RegexScratch());
  }

  /// Emit with the CanonicalizeEmbeddings collapse applied on the fly:
  /// the flat ι is compared against each survivor's slice (survivor counts
  /// are tiny — the max_embeddings bound is the ceiling, single digits the
  /// norm), the first occurrence keeps its position, and a duplicate ι
  /// replaces it only when it has strictly fewer incorrect nodes. Skipped
  /// duplicates — the common case in the raw stream — cost zero stores.
  void EmitEmbedding() {
    ++raw_emitted_;
    const size_t n = pattern_.nodes.size();
    uint32_t incorrect_count = 0;
    for (size_t u = 0; u < n; ++u) incorrect_count += incorrect_[u] != 0;
    for (Survivor& s : survivors_) {
      if (std::memcmp(iota_store_.data() + s.iota_begin, iota_.data(),
                      n * sizeof(graph::NodeId)) != 0) {
        continue;
      }
      if (incorrect_count < s.incorrect_count) {
        std::memcpy(incorrect_store_.data() + s.incorrect_begin,
                    incorrect_.data(), n);
        s.incorrect_count = incorrect_count;
        s.gamma_begin = AppendGamma();
        s.gamma_count = static_cast<uint32_t>(gamma_.size());
      }
      return;
    }
    Survivor s;
    s.iota_begin = static_cast<uint32_t>(iota_store_.size());
    std::memcpy(iota_store_.Append(n), iota_.data(),
                n * sizeof(graph::NodeId));
    s.incorrect_begin = static_cast<uint32_t>(incorrect_store_.size());
    std::memcpy(incorrect_store_.Append(n), incorrect_.data(), n);
    s.gamma_begin = AppendGamma();
    s.gamma_count = static_cast<uint32_t>(gamma_.size());
    s.incorrect_count = incorrect_count;
    survivors_.push_back(s);
  }

  /// Copies the current γ stack (strings duplicated into the arena) into
  /// the gamma store; returns the slice start.
  uint32_t AppendGamma() {
    auto begin = static_cast<uint32_t>(gamma_store_.size());
    for (size_t i = 0; i < gamma_.size(); ++i) {
      const GammaStack::Entry& e = gamma_.entry(i);
      gamma_store_.push_back(
          {arena_->StrDup(*e.var), arena_->StrDup(*e.value)});
    }
    return begin;
  }

  /// Converts the survivors to the public map/set Embedding shape — the
  /// only place the matcher touches the general-purpose allocator, and it
  /// runs once per pattern, not once per raw emission.
  std::vector<Embedding> MaterializeSurvivors() const {
    const size_t n = pattern_.nodes.size();
    std::vector<Embedding> out;
    out.reserve(survivors_.size());
    for (const Survivor& s : survivors_) {
      Embedding m;
      for (size_t u = 0; u < n; ++u) {
        m.iota[static_cast<int>(u)] = iota_store_[s.iota_begin + u];
        if (incorrect_store_[s.incorrect_begin + u] != 0) {
          m.incorrect_nodes.insert(static_cast<int>(u));
        }
      }
      // Stack order, later entries overwriting — the ToMap() contract.
      for (uint32_t g = 0; g < s.gamma_count; ++g) {
        const GammaEntry& e = gamma_store_[s.gamma_begin + g];
        m.gamma[std::string(e.var)] = std::string(e.value);
      }
      out.push_back(std::move(m));
    }
    return out;
  }

  /// Template evaluation once a full injection for node u is on the γ
  /// stack — the regex (non-AST) arm of the legacy inner loop.
  void EvaluateRegexNode(NodePlan& plan, int u, graph::NodeId v,
                         const pdg::Node& gnode) {
    const PatternNode& pnode = pattern_.nodes[u];
    bool matched = false;
    bool correct = false;
    if (pnode.exact.empty()) {
      matched = true;  // A node without an exact template matches
      correct = true;  // structurally.
    } else if (CheckExact(plan, static_cast<size_t>(u), v, pnode, gnode)) {
      matched = true;
      correct = true;
    } else if (!pnode.approx.empty() &&
               CheckApprox(plan, static_cast<size_t>(u), v, pnode, gnode)) {
      matched = true;
      correct = false;
    }
    if (!matched) return;
    incorrect_[u] = correct ? 0 : 1;
    Search();
    incorrect_[u] = 0;
  }

  /// Enumerates injections of plan.fresh_pattern into plan.fresh_graph in
  /// the same lexicographic order as EnumerateInjections, evaluating each
  /// in place — no binding maps are materialized.
  void TryInjections(NodePlan& plan, int u, graph::NodeId v,
                     const pdg::Node& gnode, size_t fp_index,
                     bool approx_only) {
    if (fp_index == plan.fresh_pattern.size()) {
      if (approx_only) {
        const PatternNode& pnode = pattern_.nodes[u];
        if (CheckApprox(plan, static_cast<size_t>(u), v, pnode, gnode)) {
          incorrect_[u] = 1;
          Search();
          incorrect_[u] = 0;
        }
      } else {
        EvaluateRegexNode(plan, u, v, gnode);
      }
      return;
    }
    for (size_t t = 0; t < plan.fresh_graph.size(); ++t) {
      if (plan.used[t] != 0) continue;
      plan.used[t] = 1;
      gamma_.Push(plan.fresh_pattern[fp_index], plan.fresh_graph[t]);
      TryInjections(plan, u, v, gnode, fp_index + 1, approx_only);
      gamma_.PopTo(gamma_.Mark() - 1);
      plan.used[t] = 0;
      if (truncated_) return;
    }
  }

  void Search() {
    if (truncated_) return;
    if (depth_ == pattern_.nodes.size()) {
      EmitEmbedding();
      if (raw_emitted_ >= options_.max_embeddings) truncated_ = true;
      return;
    }
    int u = PickNext();
    NodePlan& plan = plans_[u];
    const PatternNode& pnode = pattern_.nodes[u];
    for (graph::NodeId v : plan.candidates) {
      if (matched_graph_[v] != 0) continue;  // ι must be injective.
      if (stats_ != nullptr && ++stats_->steps > options_.max_steps) {
        truncated_ = true;
        return;
      }
      if (!EdgesConsistent(plan, v)) continue;
      const pdg::Node gnode = epdg_.NodeAt(v);

      iota_[u] = v;
      matched_graph_[v] = 1;
      ++depth_;
      if (!pnode.ast_exact.empty()) {
        AstNode(plan, u, v, gnode);
      } else {
        ComputeFresh(plan, gnode);
        if (plan.fresh_pattern.size() <= plan.fresh_graph.size()) {
          plan.used.clear();
          plan.used.resize(plan.fresh_graph.size(), 0);
          TryInjections(plan, u, v, gnode, 0, /*approx_only=*/false);
        }
      }
      --depth_;
      matched_graph_[v] = 0;
      iota_[u] = graph::kInvalidNode;
      if (truncated_) return;
    }
  }

  /// AST backend (Sec. VII extension): structural unification yields the
  /// candidate bindings directly; the regex approximate template remains
  /// the incorrect-marking fallback. The unifier needs a map-shaped γ, so
  /// this arm materializes one — AST nodes are the minority and their
  /// bindings depend on γ, which rules out the memo.
  void AstNode(NodePlan& plan, int u, graph::NodeId v,
               const pdg::Node& gnode) {
    const PatternNode& pnode = pattern_.nodes[u];
    bool any_exact = false;
    if (gnode.ast != nullptr) {
      if (stats_ != nullptr) ++stats_->regex_checks;
      VarBinding gamma_map = gamma_.ToMap();
      for (const VarBinding& binding :
           pnode.ast_exact.AllMatches(*gnode.ast, gamma_map)) {
        any_exact = true;
        size_t mark = gamma_.Mark();
        for (const auto& [pv, sv] : binding) gamma_.Push(&pv, &sv);
        Search();
        gamma_.PopTo(mark);
        if (truncated_) break;
      }
    }
    if (!any_exact && !pnode.approx.empty() && !truncated_) {
      ComputeFresh(plan, gnode);
      if (plan.fresh_pattern.size() <= plan.fresh_graph.size()) {
        plan.used.clear();
        plan.used.resize(plan.fresh_graph.size(), 0);
        TryInjections(plan, u, v, gnode, 0, /*approx_only=*/true);
      }
    }
  }

  const Pattern& pattern_;
  const pdg::Epdg& epdg_;
  const pdg::MatchIndex& index_;
  const MatchOptions& options_;
  MatchStats* stats_;
  Arena* arena_;

  size_t n_graph_ = 0;
  GammaStack gamma_;
  ArenaVec<NodePlan> plans_;
  ArenaVec<graph::NodeId> iota_;  ///< Pattern node -> graph node.
  ArenaVec<char> matched_graph_;  ///< Graph nodes already in ι.
  ArenaVec<char> incorrect_;      ///< Per-pattern-node incorrect mark.
  /// Binding-independent template memo, 2 bits per check per (u, v):
  /// bits 0-1 exact (0 unknown / 1 match / 2 fail), bits 2-3 approx.
  ArenaVec<uint8_t> memo_;
  /// Flat embedding stores: each survivor owns one ι slice and one
  /// incorrect-mark slice of pattern-node length, plus a γ slice.
  ArenaVec<graph::NodeId> iota_store_;
  ArenaVec<uint8_t> incorrect_store_;
  ArenaVec<GammaEntry> gamma_store_;
  ArenaVec<Survivor> survivors_;
  size_t raw_emitted_ = 0;  ///< Pre-dedup count; bounds the search.
  size_t depth_ = 0;
  bool truncated_ = false;
};

}  // namespace

std::vector<Embedding> MatchPatternIndexed(const Pattern& pattern,
                                           const pdg::Epdg& epdg,
                                           const pdg::MatchIndex& index,
                                           const MatchOptions& options,
                                           MatchStats* stats) {
  // The step counter doubles as the max_steps enforcement point, so the
  // engine always runs with a stats block.
  MatchStats local_stats;
  // Callers on the grading hot path pass a pooled arena (reset once per
  // submission); one-off callers get a private arena for the call.
  Arena local_arena;
  Arena* arena =
      options.scratch_arena != nullptr ? options.scratch_arena : &local_arena;
  IndexedMatcher matcher(pattern, epdg, index, options,
                         stats != nullptr ? stats : &local_stats, arena);
  return matcher.Run();
}

}  // namespace jfeed::core::internal
