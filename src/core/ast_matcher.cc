#include "core/ast_matcher.h"

#include <functional>

#include "javalang/analysis.h"
#include "javalang/parser.h"
#include "support/strings.h"

namespace jfeed::core {

namespace java = jfeed::java;

namespace {

bool IsCommutative(java::BinaryOp op) {
  switch (op) {
    case java::BinaryOp::kAdd:
    case java::BinaryOp::kMul:
    case java::BinaryOp::kEq:
    case java::BinaryOp::kNe:
    case java::BinaryOp::kAnd:
    case java::BinaryOp::kOr:
      return true;
    default:
      return false;
  }
}

class Unifier {
 public:
  Unifier(const std::set<std::string>& metavars,
          const AstTemplate::Options& options, const VarBinding& fixed)
      : metavars_(metavars), options_(options), fixed_(fixed) {}

  /// Unifies template t against content c, extending `binding` (new
  /// variables only). Returns false and leaves `binding` restored on
  /// failure.
  bool Unify(const java::Expr& t, const java::Expr& c,
             VarBinding* binding) {
    switch (t.kind) {
      case java::ExprKind::kName: {
        if (metavars_.count(t.name) == 0) {
          // A concrete name must match exactly.
          return c.kind == java::ExprKind::kName && c.name == t.name;
        }
        // Metavariable: binds a submission variable.
        if (c.kind != java::ExprKind::kName ||
            java::IsWellKnownClassName(c.name)) {
          return false;
        }
        // Already bound — either during this unification or in γ.
        auto it = binding->find(t.name);
        if (it != binding->end()) return it->second == c.name;
        const std::string* bound = Lookup(t.name);
        if (bound != nullptr) return *bound == c.name;
        // Injectivity: a submission variable may serve one metavariable.
        for (const auto& [mv, sv] : fixed_) {
          if (sv == c.name) return false;
        }
        for (const auto& [mv, sv] : *binding) {
          if (sv == c.name) return false;
        }
        (*binding)[t.name] = c.name;
        return true;
      }
      case java::ExprKind::kIntLit:
      case java::ExprKind::kLongLit:
      case java::ExprKind::kCharLit:
        return c.kind == t.kind && c.int_value == t.int_value;
      case java::ExprKind::kDoubleLit:
        return c.kind == t.kind && c.double_value == t.double_value;
      case java::ExprKind::kBoolLit:
        return c.kind == t.kind && c.bool_value == t.bool_value;
      case java::ExprKind::kStringLit:
        return c.kind == t.kind && c.string_value == t.string_value;
      case java::ExprKind::kNullLit:
        return c.kind == t.kind;
      case java::ExprKind::kBinary: {
        if (c.kind != t.kind || c.binary_op != t.binary_op) return false;
        VarBinding checkpoint = *binding;
        if (Unify(*t.lhs, *c.lhs, binding) &&
            Unify(*t.rhs, *c.rhs, binding)) {
          return true;
        }
        *binding = checkpoint;
        if (options_.commutative && IsCommutative(t.binary_op)) {
          if (Unify(*t.lhs, *c.rhs, binding) &&
              Unify(*t.rhs, *c.lhs, binding)) {
            return true;
          }
          *binding = checkpoint;
        }
        return false;
      }
      case java::ExprKind::kUnary:
        return c.kind == t.kind && c.unary_op == t.unary_op &&
               Unify(*t.lhs, *c.lhs, binding);
      case java::ExprKind::kAssign:
        return c.kind == t.kind && c.assign_op == t.assign_op &&
               Unify(*t.lhs, *c.lhs, binding) &&
               Unify(*t.rhs, *c.rhs, binding);
      case java::ExprKind::kArrayAccess:
        return c.kind == t.kind && Unify(*t.lhs, *c.lhs, binding) &&
               Unify(*t.rhs, *c.rhs, binding);
      case java::ExprKind::kFieldAccess:
        return c.kind == t.kind && c.name == t.name &&
               Unify(*t.lhs, *c.lhs, binding);
      case java::ExprKind::kMethodCall: {
        if (c.kind != t.kind || c.name != t.name ||
            c.args.size() != t.args.size()) {
          return false;
        }
        if ((t.lhs == nullptr) != (c.lhs == nullptr)) return false;
        if (t.lhs != nullptr && !Unify(*t.lhs, *c.lhs, binding)) {
          return false;
        }
        for (size_t i = 0; i < t.args.size(); ++i) {
          if (!Unify(*t.args[i], *c.args[i], binding)) return false;
        }
        return true;
      }
      case java::ExprKind::kConditional:
        return c.kind == t.kind && Unify(*t.lhs, *c.lhs, binding) &&
               Unify(*t.rhs, *c.rhs, binding) &&
               Unify(*t.third, *c.third, binding);
      case java::ExprKind::kCast:
        return c.kind == t.kind && c.type == t.type &&
               Unify(*t.lhs, *c.lhs, binding);
      case java::ExprKind::kNewArray: {
        if (c.kind != t.kind || !(c.type == t.type)) return false;
        if ((t.lhs == nullptr) != (c.lhs == nullptr)) return false;
        return t.lhs == nullptr || Unify(*t.lhs, *c.lhs, binding);
      }
      case java::ExprKind::kNewObject:
        return c.kind == t.kind && c.name == t.name;
    }
    return false;
  }

 private:
  const std::string* Lookup(const std::string& metavar) const {
    auto fixed = fixed_.find(metavar);
    if (fixed != fixed_.end()) return &fixed->second;
    return nullptr;
  }

  const std::set<std::string>& metavars_;
  const AstTemplate::Options& options_;
  const VarBinding& fixed_;
};

/// Visits `expr` and all of its subtrees.
void ForEachSubtree(const java::Expr& expr,
                    const std::function<void(const java::Expr&)>& visit) {
  visit(expr);
  if (expr.lhs) ForEachSubtree(*expr.lhs, visit);
  if (expr.rhs) ForEachSubtree(*expr.rhs, visit);
  if (expr.third) ForEachSubtree(*expr.third, visit);
  for (const auto& arg : expr.args) ForEachSubtree(*arg, visit);
}

}  // namespace

Result<AstTemplate> AstTemplate::Create(const std::string& java_source,
                                        std::set<std::string> variables,
                                        Options options) {
  // Templates are long-lived shared state (the pattern library keeps them
  // for the life of the process), so their nodes must come from the heap
  // even when a per-submission AstArenaScope is active — lazy library
  // construction can be triggered from inside a grade.
  java::AstArenaScope heap_scope(nullptr);
  JFEED_ASSIGN_OR_RETURN(java::ExprPtr parsed,
                         java::ParseExpression(java_source));
  AstTemplate out;
  out.template_ = std::shared_ptr<const java::Expr>(std::move(parsed));
  out.metavars_ = std::move(variables);
  out.text_ = java_source;
  out.options_ = options;
  // Record which metavariables the template actually mentions.
  ForEachSubtree(*out.template_, [&](const java::Expr& e) {
    if (e.kind == java::ExprKind::kName &&
        out.metavars_.count(e.name) > 0) {
      out.used_vars_.insert(e.name);
    }
  });
  return out;
}

bool AstTemplate::Matches(const java::Expr& content,
                          const VarBinding& gamma) const {
  return !AllMatches(content, gamma).empty();
}

std::vector<VarBinding> AstTemplate::AllMatches(
    const java::Expr& content, const VarBinding& gamma) const {
  std::vector<VarBinding> out;
  if (template_ == nullptr) return out;
  Unifier unifier(metavars_, options_, gamma);
  ForEachSubtree(content, [&](const java::Expr& subtree) {
    VarBinding binding;
    if (unifier.Unify(*template_, subtree, &binding)) {
      bool duplicate = false;
      for (const auto& existing : out) duplicate |= existing == binding;
      if (!duplicate) out.push_back(std::move(binding));
    }
  });
  return out;
}

Result<java::ExprPtr> ContentToExpr(const std::string& content) {
  std::string text = Trim(content);
  // Strip a leading declaration type ("int ", "double[] ", "Scanner ") —
  // heuristically: one or two leading words before an identifier that is
  // followed by '='. "return <expr>" is stripped to its expression.
  if (StartsWith(text, "return")) {
    std::string rest = Trim(text.substr(6));
    if (rest.empty()) {
      return Status::InvalidArgument("'return' has no expression");
    }
    return java::ParseExpression(rest);
  }
  auto direct = java::ParseExpression(text);
  if (direct.ok()) return direct;
  // Try dropping the first token (a type) for declaration contents.
  size_t space = text.find(' ');
  if (space != std::string::npos) {
    auto stripped = java::ParseExpression(Trim(text.substr(space + 1)));
    if (stripped.ok()) return stripped;
  }
  return Status::InvalidArgument("content has no expression form: " +
                                 content);
}

}  // namespace jfeed::core
