#include "core/pattern.h"

#include <algorithm>

#include "support/strings.h"

namespace jfeed::core {

bool TypeMatches(PatternNodeType pattern, pdg::NodeType node) {
  switch (pattern) {
    case PatternNodeType::kUntyped: return true;
    case PatternNodeType::kAssign: return node == pdg::NodeType::kAssign;
    case PatternNodeType::kBreak: return node == pdg::NodeType::kBreak;
    case PatternNodeType::kCall: return node == pdg::NodeType::kCall;
    case PatternNodeType::kCond: return node == pdg::NodeType::kCond;
    case PatternNodeType::kDecl: return node == pdg::NodeType::kDecl;
    case PatternNodeType::kReturn: return node == pdg::NodeType::kReturn;
  }
  return false;
}

const char* PatternNodeTypeName(PatternNodeType type) {
  switch (type) {
    case PatternNodeType::kAssign: return "Assign";
    case PatternNodeType::kBreak: return "Break";
    case PatternNodeType::kCall: return "Call";
    case PatternNodeType::kCond: return "Cond";
    case PatternNodeType::kDecl: return "Decl";
    case PatternNodeType::kReturn: return "Return";
    case PatternNodeType::kUntyped: return "Untyped";
  }
  return "?";
}

std::set<std::string> Pattern::Variables() const {
  std::set<std::string> out;
  for (const auto& node : nodes) {
    out.insert(node.exact.variables().begin(), node.exact.variables().end());
    out.insert(node.approx.variables().begin(),
               node.approx.variables().end());
    out.insert(node.ast_exact.variables().begin(),
               node.ast_exact.variables().end());
  }
  return out;
}

Status Pattern::Validate() const {
  if (id.empty()) return Status::InvalidArgument("pattern has no id");
  if (nodes.empty()) {
    return Status::InvalidArgument("pattern '" + id + "' has no nodes");
  }
  for (const auto& edge : edges) {
    if (edge.source < 0 || edge.source >= static_cast<int>(nodes.size()) ||
        edge.target < 0 || edge.target >= static_cast<int>(nodes.size())) {
      return Status::InvalidArgument("pattern '" + id +
                                     "' has an out-of-range edge");
    }
    if (edge.source == edge.target) {
      return Status::InvalidArgument("pattern '" + id +
                                     "' has a self-loop edge");
    }
  }
  // Definition 4: variables of r̂ must be a subset of variables of r.
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::set<std::string> exact_vars = nodes[i].exact.variables();
    exact_vars.insert(nodes[i].ast_exact.variables().begin(),
                      nodes[i].ast_exact.variables().end());
    for (const auto& v : nodes[i].approx.variables()) {
      if (exact_vars.count(v) == 0) {
        return Status::InvalidArgument(
            "pattern '" + id + "' node " + std::to_string(i) +
            ": approximate template uses variable '" + v +
            "' that the exact template does not");
      }
    }
  }
  return Status::OK();
}

std::string InstantiateFeedback(const std::string& tmpl,
                                const VarBinding& gamma) {
  std::string out;
  out.reserve(tmpl.size());
  size_t i = 0;
  while (i < tmpl.size()) {
    if (tmpl[i] == '{') {
      size_t close = tmpl.find('}', i);
      if (close != std::string::npos) {
        std::string var = tmpl.substr(i + 1, close - i - 1);
        auto it = gamma.find(var);
        out += it != gamma.end() ? it->second : var;
        i = close + 1;
        continue;
      }
    }
    out.push_back(tmpl[i]);
    ++i;
  }
  return out;
}

std::string InstantiateFeedback(const std::string& tmpl,
                                const BindingLookup& gamma) {
  std::string out;
  out.reserve(tmpl.size());
  size_t i = 0;
  while (i < tmpl.size()) {
    if (tmpl[i] == '{') {
      size_t close = tmpl.find('}', i);
      if (close != std::string::npos) {
        std::string var = tmpl.substr(i + 1, close - i - 1);
        const std::string* bound = gamma.Find(var);
        out += bound != nullptr ? *bound : var;
        i = close + 1;
        continue;
      }
    }
    out.push_back(tmpl[i]);
    ++i;
  }
  return out;
}

PatternBuilder::PatternBuilder(std::string id, std::string name) {
  pattern_.id = std::move(id);
  pattern_.name = std::move(name);
}

PatternBuilder& PatternBuilder::Var(const std::string& name) {
  variables_.insert(name);
  return *this;
}

PatternBuilder& PatternBuilder::Node(PatternNodeType type,
                                     const std::string& exact,
                                     const std::string& approx,
                                     const std::string& feedback_correct,
                                     const std::string& feedback_incorrect) {
  PatternNode node;
  node.type = type;
  if (!exact.empty()) {
    auto compiled = ExprPattern::Create(exact, variables_);
    if (!compiled.ok()) {
      if (deferred_error_.ok()) deferred_error_ = compiled.status();
    } else {
      node.exact = std::move(*compiled);
    }
  }
  if (!approx.empty()) {
    auto compiled = ExprPattern::Create(approx, variables_);
    if (!compiled.ok()) {
      if (deferred_error_.ok()) deferred_error_ = compiled.status();
    } else {
      node.approx = std::move(*compiled);
    }
  }
  node.feedback_correct = feedback_correct;
  node.feedback_incorrect = feedback_incorrect;
  pattern_.nodes.push_back(std::move(node));
  return *this;
}

PatternBuilder& PatternBuilder::NodeAst(PatternNodeType type,
                                        const std::string& exact,
                                        const std::string& approx,
                                        const std::string& feedback_correct,
                                        const std::string& feedback_incorrect) {
  PatternNode node;
  node.type = type;
  auto compiled = AstTemplate::Create(exact, variables_);
  if (!compiled.ok()) {
    if (deferred_error_.ok()) deferred_error_ = compiled.status();
  } else {
    node.ast_exact = std::move(*compiled);
  }
  if (!approx.empty()) {
    auto approx_compiled = ExprPattern::Create(approx, variables_);
    if (!approx_compiled.ok()) {
      if (deferred_error_.ok()) deferred_error_ = approx_compiled.status();
    } else {
      node.approx = std::move(*approx_compiled);
    }
  }
  node.feedback_correct = feedback_correct;
  node.feedback_incorrect = feedback_incorrect;
  pattern_.nodes.push_back(std::move(node));
  return *this;
}

PatternBuilder& PatternBuilder::CtrlEdge(int source, int target) {
  pattern_.edges.push_back({source, target, pdg::EdgeType::kCtrl});
  return *this;
}

PatternBuilder& PatternBuilder::DataEdge(int source, int target) {
  pattern_.edges.push_back({source, target, pdg::EdgeType::kData});
  return *this;
}

PatternBuilder& PatternBuilder::Present(const std::string& feedback) {
  pattern_.feedback_present = feedback;
  return *this;
}

PatternBuilder& PatternBuilder::Missing(const std::string& feedback) {
  pattern_.feedback_missing = feedback;
  return *this;
}

Result<Pattern> PatternBuilder::Build() {
  JFEED_RETURN_IF_ERROR(deferred_error_);
  JFEED_RETURN_IF_ERROR(pattern_.Validate());
  return std::move(pattern_);
}

}  // namespace jfeed::core
