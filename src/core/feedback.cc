#include "core/feedback.h"

namespace jfeed::core {

const char* FeedbackKindName(FeedbackKind kind) {
  switch (kind) {
    case FeedbackKind::kCorrect: return "Correct";
    case FeedbackKind::kIncorrect: return "Incorrect";
    case FeedbackKind::kNotExpected: return "NotExpected";
  }
  return "?";
}

double FeedbackScore(const std::vector<FeedbackComment>& comments) {
  double score = 0.0;
  for (const auto& c : comments) {
    switch (c.kind) {
      case FeedbackKind::kCorrect: score += 1.0; break;
      case FeedbackKind::kIncorrect: score += 0.5; break;
      case FeedbackKind::kNotExpected: break;
    }
  }
  return score;
}

std::string RenderFeedback(const std::vector<FeedbackComment>& comments) {
  std::string out;
  for (const auto& c : comments) {
    out += "[";
    out += FeedbackKindName(c.kind);
    out += "] ";
    if (!c.method.empty()) {
      out += "(" + c.method + ") ";
    }
    out += c.message.empty() ? c.source_id : c.message;
    out += "\n";
    for (const auto& detail : c.details) {
      out += "    - " + detail + "\n";
    }
  }
  return out;
}

}  // namespace jfeed::core
