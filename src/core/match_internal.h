#ifndef JFEED_CORE_MATCH_INTERNAL_H_
#define JFEED_CORE_MATCH_INTERNAL_H_

#include <vector>

#include "core/pattern_matcher.h"

namespace jfeed::core::internal {

/// Collapses embeddings sharing the same ι to the best one (fewest
/// incorrect nodes; first found wins ties), preserving discovery order.
/// Hash-keyed on the encoded ι, so the whole pass is O(total ι entries)
/// instead of the quadratic all-pairs map comparison it replaces; both
/// engines share it so the ablation bench compares like for like.
std::vector<Embedding> CanonicalizeEmbeddings(std::vector<Embedding> all);

/// The index-driven flat-state engine (MatchEngine::kIndexed). `index` must
/// be built from `epdg`. `stats` may be null.
std::vector<Embedding> MatchPatternIndexed(const Pattern& pattern,
                                           const pdg::Epdg& epdg,
                                           const pdg::MatchIndex& index,
                                           const MatchOptions& options,
                                           MatchStats* stats);

}  // namespace jfeed::core::internal

#endif  // JFEED_CORE_MATCH_INTERNAL_H_
