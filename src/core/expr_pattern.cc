#include "core/expr_pattern.h"

#include <algorithm>
#include <functional>

#include "support/regex_cache.h"
#include "support/strings.h"

namespace jfeed::core {

Result<ExprPattern> ExprPattern::Create(std::string tmpl,
                                        std::set<std::string> variables) {
  ExprPattern out;
  out.text_ = tmpl;
  std::string literal;
  size_t i = 0;
  auto flush_literal = [&]() {
    if (!literal.empty()) {
      out.pieces_.push_back({false, std::move(literal)});
      literal.clear();
    }
  };
  while (i < tmpl.size()) {
    char c = tmpl[i];
    if (c == '\\' && i + 1 < tmpl.size()) {
      // Regex escape (\b, \[, ...) — copy verbatim, never a variable.
      literal.push_back(c);
      literal.push_back(tmpl[i + 1]);
      i += 2;
      continue;
    }
    // Note: '$' is deliberately not an identifier character here (unlike in
    // Java source) so that templates can end a variable with the regex
    // end-anchor, e.g. "f \*= fx$".
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < tmpl.size() &&
             (std::isalnum(static_cast<unsigned char>(tmpl[i])) ||
              tmpl[i] == '_')) {
        ++i;
      }
      std::string ident = tmpl.substr(start, i - start);
      if (variables.count(ident) > 0) {
        flush_literal();
        out.pieces_.push_back({true, ident});
        out.used_vars_.insert(ident);
      } else {
        literal += ident;
      }
      continue;
    }
    literal.push_back(c);
    ++i;
  }
  flush_literal();
  // Validate the non-variable skeleton by substituting a plain identifier
  // for every variable.
  std::string probe;
  for (const auto& piece : out.pieces_) {
    probe += piece.is_variable ? "v" : piece.text;
  }
  if (!RegexCache::ThreadLocal().Valid(probe)) {
    return Status::InvalidArgument("invalid expression template regex: " +
                                   tmpl);
  }
  return out;
}

bool ExprPattern::Matches(std::string_view content,
                          const VarBinding& gamma) const {
  if (pieces_.empty()) return false;
  std::string regex_text;
  for (const auto& piece : pieces_) {
    if (!piece.is_variable) {
      regex_text += piece.text;
      continue;
    }
    auto it = gamma.find(piece.text);
    if (it == gamma.end()) return false;  // Unbound variable.
    // Whole-word match of the concrete variable name.
    regex_text += "\\b";
    regex_text += RegexEscape(it->second);
    regex_text += "\\b";
  }
  return RegexCache::ThreadLocal().Search(regex_text, content);
}

bool ExprPattern::Matches(std::string_view content,
                          const BindingLookup& gamma,
                          std::string* scratch) const {
  if (pieces_.empty()) return false;
  scratch->clear();
  for (const auto& piece : pieces_) {
    if (!piece.is_variable) {
      *scratch += piece.text;
      continue;
    }
    const std::string* bound = gamma.Find(piece.text);
    if (bound == nullptr) return false;  // Unbound variable.
    // Whole-word match of the concrete variable name.
    *scratch += "\\b";
    RegexEscapeAppend(*bound, scratch);
    *scratch += "\\b";
  }
  return RegexCache::ThreadLocal().Search(*scratch, content);
}

std::vector<VarBinding> EnumerateInjections(const std::set<std::string>& from,
                                            const std::set<std::string>& to) {
  std::vector<VarBinding> out;
  if (from.size() > to.size()) return out;
  std::vector<std::string> sources(from.begin(), from.end());
  std::vector<std::string> targets(to.begin(), to.end());
  // Backtracking over target choices for each source.
  std::vector<bool> used(targets.size(), false);
  VarBinding current;
  // Recursive lambda via explicit stack-free helper.
  std::function<void(size_t)> recurse = [&](size_t index) {
    if (index == sources.size()) {
      out.push_back(current);
      return;
    }
    for (size_t t = 0; t < targets.size(); ++t) {
      if (used[t]) continue;
      used[t] = true;
      current[sources[index]] = targets[t];
      recurse(index + 1);
      current.erase(sources[index]);
      used[t] = false;
    }
  };
  recurse(0);
  return out;
}

}  // namespace jfeed::core
