#ifndef JFEED_CORE_CONSTRAINT_H_
#define JFEED_CORE_CONSTRAINT_H_

#include <map>
#include <string>
#include <vector>

#include "core/expr_pattern.h"
#include "core/pattern_matcher.h"
#include "pdg/epdg.h"

namespace jfeed::core {

/// The three constraint kinds of Sec. III-C.
enum class ConstraintKind { kEquality, kEdgeExistence, kContainment };

/// A constraint correlating patterns for fine-grained, assignment-specific
/// assessment (Definitions 8-10). One struct covers all three kinds; only
/// the fields relevant to `kind` are read.
struct Constraint {
  ConstraintKind kind = ConstraintKind::kEquality;
  std::string id;  ///< Knowledge-base identifier for reporting.

  // kEquality / kEdgeExistence: (p_i, u_i, p_j, u_j [, t_e]).
  std::string pattern_i;
  int node_i = 0;
  std::string pattern_j;
  int node_j = 0;
  pdg::EdgeType edge_type = pdg::EdgeType::kData;  ///< kEdgeExistence only.

  // kContainment: (p, u, r, P) — pattern_i/node_i are the main pattern and
  // node, `expr` is the incomplete expression over the union of variable
  // sets, `supporting` are the ids of the supporting patterns P.
  ExprPattern expr;
  std::vector<std::string> supporting;

  /// Feedback when the constraint holds / is violated.
  std::string feedback_ok;
  std::string feedback_fail;

  /// Every pattern id this constraint refers to.
  std::vector<std::string> ReferencedPatterns() const;
};

Constraint MakeEqualityConstraint(std::string id, std::string pattern_i,
                                  int node_i, std::string pattern_j,
                                  int node_j, std::string feedback_ok = "",
                                  std::string feedback_fail = "");

Constraint MakeEdgeConstraint(std::string id, std::string pattern_i,
                              int node_i, std::string pattern_j, int node_j,
                              pdg::EdgeType edge_type,
                              std::string feedback_ok = "",
                              std::string feedback_fail = "");

/// `expr_template` is compiled against `variables` (union of the main and
/// supporting patterns' variables — Definition 10 requires the per-pattern
/// variable sets to be disjoint, which the knowledge base guarantees).
Result<Constraint> MakeContainmentConstraint(
    std::string id, std::string main_pattern, int node,
    const std::string& expr_template, const std::set<std::string>& variables,
    std::vector<std::string> supporting, std::string feedback_ok = "",
    std::string feedback_fail = "");

/// Outcome of checking one constraint.
enum class ConstraintOutcome {
  kFulfilled,
  kViolated,
  /// A referenced pattern had no (or a wrong number of) embeddings, so the
  /// constraint cannot be assessed (Algorithm 2's NotExpected propagation).
  kNotApplicable,
};

/// Per-pattern embedding sets, as accumulated by Algorithm 2 (the paper's
/// m̄ map).
using EmbeddingSets = std::map<std::string, std::vector<Embedding>>;

/// ConstraintMatching (Sec. V): checks `constraint` against the stored
/// embeddings. The constraint is fulfilled when there *exist* embeddings of
/// the referenced patterns satisfying the definition's condition.
/// `not_expected` lists patterns whose occurrence count differed from t̄;
/// any reference to them yields kNotApplicable.
ConstraintOutcome CheckConstraint(
    const Constraint& constraint, const pdg::Epdg& epdg,
    const EmbeddingSets& embeddings,
    const std::set<std::string>& not_expected);

/// Returns the γ binding that witnessed a fulfilled constraint (union of the
/// participating embeddings' bindings), for feedback instantiation. Empty
/// when the constraint is not fulfilled.
VarBinding ConstraintWitness(const Constraint& constraint,
                             const pdg::Epdg& epdg,
                             const EmbeddingSets& embeddings);

/// Instantiates `tmpl` against the witness binding in one pass — byte-for-
/// byte what InstantiateFeedback(tmpl, ConstraintWitness(...)) returns,
/// without materializing the merged witness map.
std::string ConstraintWitnessFeedback(const Constraint& constraint,
                                      const pdg::Epdg& epdg,
                                      const EmbeddingSets& embeddings,
                                      const std::string& tmpl);

/// CheckConstraint fused with the fulfilled-feedback rendering — the
/// grading hot path's single-pass form. When the result is kFulfilled,
/// `*ok_message` receives InstantiateFeedback(constraint.feedback_ok,
/// <witness binding>); otherwise it is left untouched. One evaluation
/// instead of CheckConstraint + ConstraintWitnessFeedback.
ConstraintOutcome CheckConstraintFeedback(
    const Constraint& constraint, const pdg::Epdg& epdg,
    const EmbeddingSets& embeddings,
    const std::set<std::string>& not_expected, std::string* ok_message);

}  // namespace jfeed::core

#endif  // JFEED_CORE_CONSTRAINT_H_
