#ifndef JFEED_CORE_EXPR_PATTERN_H_
#define JFEED_CORE_EXPR_PATTERN_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "support/result.h"

namespace jfeed::core {

/// Binding of pattern variables to submission variables — the paper's γ.
using VarBinding = std::map<std::string, std::string>;

/// Read-only view of γ for matcher hot paths that keep their bindings in a
/// flat stack instead of a std::map. Find returns the bound submission
/// variable or nullptr.
class BindingLookup {
 public:
  virtual ~BindingLookup() = default;
  virtual const std::string* Find(const std::string& pattern_var) const = 0;
};

/// An *incomplete Java expression* (Definitions 4 and 6): a regex template
/// over normalized Java expression text in which declared pattern variables
/// appear as placeholders. `x \+= s\[x\]` with variables {x, s} matches
/// `odd += a[i]` under γ = {x→i, s→a}? No — under γ = {s→a, x→i} it matches
/// `a[i]` fragments; whole-word boundaries keep `i` from matching inside
/// `int`.
///
/// The template is an ECMAScript regex fragment; everything that is not a
/// declared variable is passed through verbatim, so authors can use
/// alternation and character classes (e.g. `x (<|<=) s\.length` as an
/// approximate bound check). Matching uses *search* semantics: the template
/// must occur somewhere inside the node content, which is how the paper's
/// `x = 0` matches `int i = 0`.
class ExprPattern {
 public:
  /// An ExprPattern that matches nothing (used for absent r̂).
  ExprPattern() = default;

  /// Compiles `tmpl` with the given pattern-variable set. Fails when the
  /// non-variable part of the template is not a valid regex.
  static Result<ExprPattern> Create(std::string tmpl,
                                    std::set<std::string> variables);

  /// True when no template was provided; an empty pattern never matches.
  bool empty() const { return pieces_.empty(); }

  /// Variables referenced by the template.
  const std::set<std::string>& variables() const { return used_vars_; }

  /// The original template text.
  const std::string& text() const { return text_; }

  /// The paper's r ⪯γ c: substitutes γ into the template and searches
  /// `content`. Every variable used by the template must be bound in
  /// `gamma`; unbound variables make the match fail.
  bool Matches(std::string_view content, const VarBinding& gamma) const;

  /// Allocation-free variant for the indexed matcher: bindings come from a
  /// BindingLookup and the substituted regex text is assembled into
  /// `*scratch` (cleared first, capacity reused across calls).
  bool Matches(std::string_view content, const BindingLookup& gamma,
               std::string* scratch) const;

 private:
  struct Piece {
    bool is_variable = false;
    std::string text;  ///< Literal regex fragment, or the variable name.
  };

  std::string text_;
  std::vector<Piece> pieces_;
  std::set<std::string> used_vars_;
};

/// Enumerates all injective mappings of `from` into `to` (the paper's
/// Combinations(X, Y), relaxed to injections — see DESIGN.md §3). Returns
/// exactly one empty mapping when `from` is empty, and nothing when
/// |from| > |to|.
std::vector<VarBinding> EnumerateInjections(
    const std::set<std::string>& from, const std::set<std::string>& to);

}  // namespace jfeed::core

#endif  // JFEED_CORE_EXPR_PATTERN_H_
