#ifndef JFEED_SCHED_SCHEDULER_H_
#define JFEED_SCHED_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "kb/assignments.h"
#include "sched/bounded_queue.h"
#include "sched/result_cache.h"
#include "service/pipeline.h"
#include "support/status.h"

namespace jfeed::sched {

/// Tuning for one BatchScheduler.
struct SchedulerOptions {
  /// Worker threads; each owns a private GradingPipeline (and, via
  /// RegexCache::ThreadLocal(), a private regex cache). Clamped to >= 1.
  int jobs = 4;
  /// Capacity of the bounded job queue — the backpressure knob. Submit()
  /// returns kUnavailable when this many jobs are already waiting.
  size_t queue_capacity = 256;
  /// Content-addressed dedup of identical (token-normalized) submissions.
  bool use_result_cache = true;
  /// Capacity of the result cache created when `cache` is null.
  size_t cache_capacity = 4096;
  /// Optional externally-owned cache, shared across schedulers/batches.
  std::shared_ptr<ResultCache> cache;
  /// Method-level incremental grading (DESIGN.md §3d): one
  /// service::MethodCache shared by every worker pipeline, so a
  /// resubmission reuses the unedited methods' graphs and match cells and
  /// lands on the "partial_hit" disposition.
  bool use_method_cache = false;
  /// Capacity of the method cache created when `method_cache` is null.
  size_t method_cache_capacity = 8192;
  /// Optional externally-owned method cache, shared across schedulers.
  std::shared_ptr<service::MethodCache> method_cache;
};

/// Per-batch accounting returned by GradeBatchWithStats.
struct BatchStats {
  size_t submissions = 0;
  size_t graded = 0;       ///< Submissions that actually ran the pipeline.
  size_t cache_hits = 0;   ///< Served from the cross-batch result cache.
  size_t dedup_hits = 0;   ///< Coalesced onto an in-flight duplicate.

  /// Fraction of submissions that did not pay for a grade.
  double HitRate() const {
    return submissions == 0
               ? 0.0
               : static_cast<double>(cache_hits + dedup_hits) / submissions;
  }
};

/// The concurrent batch grading engine: a fixed worker pool pulling from a
/// bounded MPMC queue. Each worker owns a private GradingPipeline, so
/// per-submission isolation (fresh budgets, no shared mutable state) is
/// exactly the sequential GradeBatch contract — a poisoned worker degrades
/// its submission, never the batch. All workers share one ReferenceOracle,
/// so the functional oracle runs the reference once per (assignment, test
/// input) per scheduler, not once per submission.
///
/// Two front ends:
///  - Submit()/Wait(): streaming admission with backpressure — Submit
///    returns kUnavailable when the job queue is full instead of buffering
///    without bound.
///  - GradeBatch()/GradeBatchWithStats(): whole-batch grading with
///    deterministic input-order results regardless of completion order,
///    plus content-addressed dedup (disabled automatically while a
///    fault-injection campaign is enabled, so chaos tests see every grade).
///
/// Destruction drains cleanly: the queue closes, in-flight work finishes,
/// workers join.
class BatchScheduler {
 public:
  BatchScheduler(const kb::Assignment& assignment,
                 service::PipelineOptions pipeline_options =
                     service::PipelineOptions(),
                 SchedulerOptions options = SchedulerOptions());
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Streaming admission. On success, *ticket identifies the submission for
  /// Wait(). Returns kUnavailable when the job queue is full (retry after
  /// draining some results) and kUnavailable with a different message after
  /// shutdown began.
  Status Submit(const std::string& source, uint64_t* ticket);

  /// Submit with a caller-chosen submission id, which the worker stamps
  /// into the flight-recorder wide event for this grade (the streaming
  /// path never consults the result cache, so those events carry
  /// cache="off").
  Status Submit(const std::string& source, const std::string& id,
                uint64_t* ticket);

  /// Blocks until the outcome for `ticket` is ready and returns it. Each
  /// ticket can be waited on exactly once.
  service::GradingOutcome Wait(uint64_t ticket);

  /// Grades a whole batch; element i of the result corresponds to source i
  /// (deterministic order, whatever order workers finish in). The producer
  /// uses blocking admission internally, so memory stays bounded by the
  /// queue capacity while large batches stream through.
  std::vector<service::GradingOutcome> GradeBatch(
      const std::vector<std::string>& sources);

  /// GradeBatch plus dedup/cache accounting for this batch.
  std::vector<service::GradingOutcome> GradeBatchWithStats(
      const std::vector<std::string>& sources, BatchStats* stats);

  /// GradeBatchWithStats with caller-chosen submission ids for the flight
  /// recorder (parallel to `sources`; pass an empty vector for anonymous
  /// events). Every submission emits exactly one wide event when the
  /// recorder is enabled: graded leaders from the worker that ran them
  /// (cache="miss", or "off" when caching is disabled), cache hits and
  /// dedup followers from the admission/collection loop.
  std::vector<service::GradingOutcome> GradeBatchWithStats(
      const std::vector<std::string>& sources,
      const std::vector<std::string>& ids, BatchStats* stats);

  int jobs() const { return jobs_; }
  /// The result cache (null when caching is disabled).
  const ResultCache* cache() const { return cache_.get(); }

  /// Jobs currently waiting in the bounded queue / its capacity — the
  /// backpressure signals /healthz reports.
  size_t queue_depth() const { return queue_.size(); }
  size_t queue_capacity() const { return queue_.capacity(); }

 private:
  struct Job {
    uint64_t ticket = 0;
    std::string id;     ///< Flight-recorder submission id; may be empty.
    std::string source;
    /// Cache disposition the admitting front end observed ("miss" after a
    /// failed lookup, "off" when no lookup was attempted); stamped into
    /// this job's wide event by the grading worker.
    const char* cache = "off";
  };

  void WorkerLoop();
  service::GradingOutcome TakeResult(uint64_t ticket);

  const kb::Assignment& assignment_;
  service::PipelineOptions pipeline_options_;
  int jobs_;
  std::shared_ptr<ResultCache> cache_;  ///< Null when caching is off.
  std::shared_ptr<service::ReferenceOracle> oracle_;

  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;

  std::mutex results_mu_;
  std::condition_variable results_cv_;
  std::unordered_map<uint64_t, service::GradingOutcome> results_;
  std::atomic<uint64_t> next_ticket_{1};
};

}  // namespace jfeed::sched

namespace jfeed::service {

/// Service-level parallel counterpart of GradingPipeline::GradeBatch: same
/// contract (element i corresponds to source i; every submission yields
/// exactly one outcome), executed by a worker pool with content-addressed
/// dedup. One-shot convenience over constructing a sched::BatchScheduler.
std::vector<GradingOutcome> GradeBatchParallel(
    const kb::Assignment& assignment, const std::vector<std::string>& sources,
    const PipelineOptions& pipeline_options = PipelineOptions(),
    const sched::SchedulerOptions& scheduler_options =
        sched::SchedulerOptions());

}  // namespace jfeed::service

#endif  // JFEED_SCHED_SCHEDULER_H_
