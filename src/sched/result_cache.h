#ifndef JFEED_SCHED_RESULT_CACHE_H_
#define JFEED_SCHED_RESULT_CACHE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/pipeline.h"

namespace jfeed::sched {

/// 64-bit fingerprint of the lexed-token stream of a Java source: each
/// token's kind and spelling is folded into an FNV-1a/splitmix chain, so two
/// submissions that differ only in comments, whitespace, or line layout hash
/// identically — which is exactly the duplicate mass MOOC batches carry.
/// Positions (line/column) are deliberately excluded from the hash; see
/// ResultCache for what that implies. Sources the lexer rejects fall back to
/// a raw-byte hash (domain-separated from token hashes), so unlexable
/// garbage still dedups byte-identical copies and nothing collides with a
/// real token stream.
uint64_t TokenFingerprint(const std::string& source);

/// Cumulative counters of one ResultCache.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// Content-addressed grading-result cache: key = (assignment id, token
/// fingerprint of the source), value = the full GradingOutcome. Duplicate
/// submissions — within a batch or across batches — cost one grade.
///
/// Equivalence contract: grading is deterministic over the token stream, so
/// a cached outcome is identical to a fresh grade in verdict, tier, failure
/// class, feedback text, and functional verdict. Two fields may reflect the
/// cached *representative* rather than the specific duplicate: `timings`
/// (wall-clock of the original grade) and position-bearing `diagnostic`
/// strings (a whitespace variant of a parse-failing source can place the
/// error on a different line). Callers that need exact diagnostics for
/// unparseable sources get them anyway: lex failures fingerprint by raw
/// bytes, so only byte-identical garbage shares an entry.
///
/// Thread-safe; bounded with the same CLOCK-style second-chance eviction as
/// RegexCache so a batch's hot duplicates survive overflow.
class ResultCache {
 public:
  explicit ResultCache(size_t max_entries = 4096)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// True (and fills *out) when (assignment_id, fingerprint) is cached.
  bool Lookup(const std::string& assignment_id, uint64_t fingerprint,
              service::GradingOutcome* out);

  /// Stores one outcome, evicting a cold entry when full. Overwrites any
  /// existing entry for the key (last grade wins; they are equivalent).
  void Insert(const std::string& assignment_id, uint64_t fingerprint,
              service::GradingOutcome outcome);

  CacheStats stats() const;
  size_t size() const;
  size_t max_entries() const { return max_entries_; }

 private:
  struct Entry {
    service::GradingOutcome outcome;
    bool referenced = false;  ///< Second-chance bit, set on every hit.
  };

  static std::string MakeKey(const std::string& assignment_id,
                             uint64_t fingerprint);

  void EvictOneLocked();

  const size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::vector<std::string> clock_;  ///< Keys in eviction-scan order.
  size_t hand_ = 0;
  CacheStats stats_;
};

}  // namespace jfeed::sched

#endif  // JFEED_SCHED_RESULT_CACHE_H_
