#ifndef JFEED_SCHED_SHARDED_SCHEDULER_H_
#define JFEED_SCHED_SHARDED_SCHEDULER_H_

// Multi-tenant batch grading engine: one worker pool, one shard per
// assignment, per-shard admission control.
//
// The single-assignment BatchScheduler scales a fleet only by running one
// process (and one worker pool) per assignment. The ShardedScheduler is the
// multi-tenant split of that design: all assignments are loaded at
// construction, every worker thread can grade any of them (pipelines are
// created lazily per (worker, assignment)), and the *only* per-assignment
// resource is an admission quota — a bound on how many of one assignment's
// submissions may be in the system (queued or grading) at once.
//
// That quota is the isolation mechanism for deadline-day spikes: when
// assignment A's students resubmit in a burst, A's submissions beyond its
// quota are shed immediately with kUnavailable (the daemon turns that into
// 429 + Retry-After) while assignments B..L keep grading with bounded queue
// delay — A can occupy at most `shard_queue_capacity` slots of the shared
// FIFO, so no other tenant waits behind more than one quota's worth of A.
//
// Per-assignment observability (the `assignment` label, DESIGN.md §6):
//   jfeed_sched_jobs_total{assignment=...}        graded per shard
//   jfeed_sched_shard_queue_depth{assignment=...} in-system per shard
//   jfeed_shed_total{assignment=...}              admission sheds per shard
//   jfeed_grade_duration_us{assignment=...}       admission->result latency
// The unlabeled scheduler aggregates (jfeed_sched_jobs_total, queue depth,
// busy/idle) keep working so /statusz and existing dashboards are unchanged.
//
// Destruction drains: every admitted submission is answered before workers
// join, exactly like BatchScheduler.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "kb/assignments.h"
#include "obs/trace_context.h"
#include "sched/bounded_queue.h"
#include "sched/result_cache.h"
#include "sched/scheduler.h"
#include "service/pipeline.h"
#include "support/status.h"

namespace jfeed::sched {

/// Tuning for one ShardedScheduler.
struct ShardedSchedulerOptions {
  /// Worker threads shared by every shard. Clamped to >= 1.
  int jobs = 4;
  /// Per-assignment admission quota: submissions of one assignment that may
  /// be in the system (queued or grading) before further ones are shed.
  size_t shard_queue_capacity = 64;
  /// Content-addressed result cache shared across shards (keyed by
  /// (assignment, token fingerprint), so tenants never cross-hit).
  bool use_result_cache = true;
  size_t cache_capacity = 4096;
  /// Method-level incremental grading (DESIGN.md §3d), shared across
  /// shards; entries are keyed by assignment id, so two tenants whose
  /// submissions share a method body still never cross-hit.
  bool use_method_cache = false;
  size_t method_cache_capacity = 8192;
};

/// One input line of a mixed-assignment batch.
struct MixedItem {
  std::string assignment;  ///< Knowledge-base assignment id.
  std::string id;          ///< Caller-chosen submission id; may be empty.
  std::string source;
  /// Distributed-trace context of the request this line arrived on (the
  /// daemon's adopted-or-minted traceparent). The grading worker's
  /// sched.job span parents under it, so worker pipeline spans and the
  /// wide event join the broker-side trace. Default (invalid) = untraced.
  obs::TraceContext trace;
};

/// One result line of a mixed-assignment batch. `status` is OK for graded /
/// cache-served lines; kUnavailable for an admission shed (the 429 path);
/// kNotFound for an unknown assignment id (the per-line 404 path).
struct MixedOutcome {
  Status status;
  service::GradingOutcome outcome;  ///< Meaningful only when status.ok().
  /// Cache disposition: "miss" (graded), "hit", "dedup", "off",
  /// "partial_hit" (graded, but the method cache served some methods), or
  /// "" for non-OK statuses.
  const char* disposition = "";
};

class ShardedScheduler {
 public:
  /// `assignments` become the shards, in order; the vector must be
  /// non-empty and the pointers must outlive the scheduler (they point into
  /// the process-lifetime KnowledgeBase).
  ShardedScheduler(std::vector<const kb::Assignment*> assignments,
                   service::PipelineOptions pipeline_options =
                       service::PipelineOptions(),
                   ShardedSchedulerOptions options =
                       ShardedSchedulerOptions());
  ~ShardedScheduler();

  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;

  /// Streaming admission with per-shard quota. kNotFound for an unknown
  /// assignment, kUnavailable when the shard quota is exhausted (shed; the
  /// per-assignment jfeed_shed_total counter increments) or after shutdown
  /// began. On success *ticket identifies the submission for Wait().
  /// `trace` (optional) is the request's distributed-trace context.
  Status Submit(const std::string& assignment_id, const std::string& source,
                const std::string& id, uint64_t* ticket,
                const obs::TraceContext& trace = obs::TraceContext());

  /// Blocks until the outcome for `ticket` is ready. One wait per ticket.
  service::GradingOutcome Wait(uint64_t ticket);

  /// Grades one mixed-assignment batch: element i corresponds to item i.
  /// Admission is non-blocking — a line whose shard quota is exhausted is
  /// shed (kUnavailable) instead of stalling the whole batch behind one
  /// tenant's spike. Identical (assignment, token stream) lines coalesce
  /// onto one pipeline run; the shared cache serves repeats across batches.
  std::vector<MixedOutcome> GradeMixedBatch(
      const std::vector<MixedItem>& items, BatchStats* stats = nullptr);

  int jobs() const { return jobs_; }
  size_t shard_count() const { return shards_.size(); }
  const ResultCache* cache() const { return cache_.get(); }
  size_t shard_queue_capacity() const { return options_.shard_queue_capacity; }

  /// Shard ids in construction order (= /statusz shard order).
  std::vector<std::string> assignment_ids() const;

  /// In-system submissions for one assignment (0 for unknown ids).
  size_t ShardDepth(const std::string& assignment_id) const;

  /// True when every shard's quota is exhausted — the /healthz "saturated"
  /// condition for a multi-tenant daemon.
  bool Saturated() const;

  /// Jobs waiting in the shared queue / its total capacity (the aggregate
  /// backpressure view; per-shard depth is the admission-control view).
  size_t queue_depth() const { return queue_.size(); }
  size_t queue_capacity() const { return queue_.capacity(); }

 private:
  struct Shard {
    const kb::Assignment* assignment = nullptr;
    std::shared_ptr<service::ReferenceOracle> oracle;
    std::atomic<size_t> depth{0};  ///< Queued + grading, quota-bounded.
  };

  struct Job {
    uint64_t ticket = 0;
    size_t shard = 0;
    std::string id;
    std::string source;
    const char* cache = "off";
    int64_t admitted_us = 0;  ///< Steady-clock admission time for latency.
    obs::TraceContext trace;  ///< Request trace the job span adopts.
  };

  void WorkerLoop();
  service::GradingOutcome TakeResult(uint64_t ticket);
  /// Shard index for `assignment_id`; false when unknown.
  bool FindShard(const std::string& assignment_id, size_t* index) const;
  /// Quota check + push. kUnavailable on shed or shutdown.
  Status Admit(size_t shard_index, const std::string& source,
               const std::string& id, const char* cache,
               const obs::TraceContext& trace, uint64_t* ticket);

  service::PipelineOptions pipeline_options_;
  ShardedSchedulerOptions options_;
  int jobs_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::string, size_t> shard_by_id_;
  std::shared_ptr<ResultCache> cache_;  ///< Null when caching is off.

  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;

  std::mutex results_mu_;
  std::condition_variable results_cv_;
  std::unordered_map<uint64_t, service::GradingOutcome> results_;
  std::atomic<uint64_t> next_ticket_{1};
};

}  // namespace jfeed::sched

#endif  // JFEED_SCHED_SHARDED_SCHEDULER_H_
