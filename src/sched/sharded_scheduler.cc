#include "sched/sharded_scheduler.h"

#include <chrono>
#include <utility>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "support/fault.h"

namespace jfeed::sched {

namespace {

// Aggregate scheduler signals shared with BatchScheduler — same family
// names, so /statusz and existing dashboards read one truth regardless of
// which engine is running.
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge = obs::Registry::Global().GetGauge(
      "jfeed_sched_queue_depth", "Jobs currently waiting in the batch queue");
  return gauge;
}
obs::Gauge* WorkersGauge() {
  static obs::Gauge* gauge = obs::Registry::Global().GetGauge(
      "jfeed_sched_workers", "Worker threads currently alive");
  return gauge;
}
obs::Counter* JobsTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_sched_jobs_total", "Jobs graded by scheduler workers");
  return counter;
}
obs::Counter* BusyUsTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_sched_busy_us_total",
      "Cumulative worker microseconds spent grading jobs");
  return counter;
}
obs::Counter* IdleUsTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_sched_idle_us_total",
      "Cumulative worker microseconds spent waiting for jobs");
  return counter;
}

// Per-assignment instruments (the `assignment` label — DESIGN.md §6
// contract change, PR 7). Looked up per call rather than via function-local
// statics because the label value varies; the registry lock is amortized by
// the milliseconds a grade costs.
obs::Counter* ShardJobsTotal(const std::string& assignment) {
  return obs::Registry::Global().GetCounter(
      "jfeed_sched_jobs_total", "Jobs graded by scheduler workers",
      {{"assignment", assignment}});
}
obs::Gauge* ShardDepthGauge(const std::string& assignment) {
  return obs::Registry::Global().GetGauge(
      "jfeed_sched_shard_queue_depth",
      "Submissions in the system (queued or grading) per assignment shard",
      {{"assignment", assignment}});
}
obs::Counter* ShedTotal(const std::string& assignment) {
  return obs::Registry::Global().GetCounter(
      "jfeed_shed_total",
      "Submissions shed by per-assignment admission control",
      {{"assignment", assignment}});
}
obs::Histogram* GradeDurationUs(const std::string& assignment) {
  return obs::Registry::Global().GetHistogram(
      "jfeed_grade_duration_us",
      "Admission-to-result grade latency per assignment, microseconds",
      {{"assignment", assignment}});
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// See BatchScheduler: libstdc++'s ctype<char> caches fill lazily and
/// unsynchronized; touch them before worker threads exist.
void WarmCtypeCaches() {
  const auto& facet = std::use_facet<std::ctype<char>>(std::locale());
  for (int c = 0; c < 256; ++c) {
    facet.narrow(static_cast<char>(c), '\0');
    facet.widen(static_cast<char>(c));
  }
}

}  // namespace

ShardedScheduler::ShardedScheduler(
    std::vector<const kb::Assignment*> assignments,
    service::PipelineOptions pipeline_options, ShardedSchedulerOptions options)
    : pipeline_options_(std::move(pipeline_options)),
      options_(options),
      jobs_(options.jobs < 1 ? 1 : options.jobs),
      // The shared FIFO never rejects an admitted job: total in-system work
      // is bounded by the shard quotas, so capacity = shards × quota makes
      // the quota the only admission gate.
      queue_(assignments.empty()
                 ? options.shard_queue_capacity
                 : assignments.size() * options.shard_queue_capacity) {
  if (options_.shard_queue_capacity == 0) options_.shard_queue_capacity = 1;
  shards_.reserve(assignments.size());
  for (const kb::Assignment* assignment : assignments) {
    auto shard = std::make_unique<Shard>();
    shard->assignment = assignment;
    shard->oracle = std::make_shared<service::ReferenceOracle>();
    shard_by_id_.emplace(assignment->id, shards_.size());
    shards_.push_back(std::move(shard));
    // Register every per-assignment instrument up front: a tenant that
    // never sheds still exposes jfeed_shed_total{assignment=...} 0, so
    // scrapers and the CI metric-name greps see the full label space from
    // the first scrape, not only after the first event.
    ShardJobsTotal(assignment->id);
    ShardDepthGauge(assignment->id);
    ShedTotal(assignment->id);
    GradeDurationUs(assignment->id);
  }
  if (options_.use_result_cache) {
    cache_ = std::make_shared<ResultCache>(options_.cache_capacity);
  }
  if (options_.use_method_cache &&
      pipeline_options_.method_cache == nullptr) {
    pipeline_options_.method_cache = std::make_shared<service::MethodCache>(
        options_.method_cache_capacity);
  }
  WarmCtypeCaches();
  workers_.reserve(static_cast<size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ShardedScheduler::~ShardedScheduler() {
  queue_.Close();
  for (auto& worker : workers_) worker.join();
}

void ShardedScheduler::WorkerLoop() {
  // One lazily-built pipeline per assignment this worker has graded: the
  // pipeline (and everything thread-local it reaches, plus its recycled
  // per-submission arena pool) belongs to this thread, so steady-state
  // grading recycles arena chunks instead of calling the allocator; the
  // per-shard oracle is the deliberate cross-worker memo.
  std::unordered_map<size_t, std::unique_ptr<service::GradingPipeline>>
      pipelines;
  const bool metered = obs::Registry::Global().enabled();
  if (metered) WorkersGauge()->Add(1);
  auto mark = std::chrono::steady_clock::now();
  auto lap_us = [&mark] {
    auto now = std::chrono::steady_clock::now();
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(now - mark)
                  .count();
    mark = now;
    return us;
  };
  while (auto job = queue_.Pop()) {
    if (metered) {
      IdleUsTotal()->Increment(lap_us());
      QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
    }
    Shard& shard = *shards_[job->shard];
    auto it = pipelines.find(job->shard);
    if (it == pipelines.end()) {
      it = pipelines
               .emplace(job->shard,
                        std::make_unique<service::GradingPipeline>(
                            *shard.assignment, pipeline_options_,
                            shard.oracle))
               .first;
    }
    // The job span adopts the request's traceparent context, so the
    // pipeline's `grade` span tree (which nests under it implicitly and
    // stamps outcome.trace_id) lands on the same distributed trace as the
    // broker's routing attempts.
    obs::Span job_span("sched.job", job->trace);
    service::GradingOutcome outcome = it->second->Grade(job->source);
    job_span.End();
    const char* disposition =
        service::ResolveCacheDisposition(job->cache, outcome);
    service::CountCacheDisposition(disposition);
    if (obs::EventLog::Global().enabled()) {
      obs::EventLog::Global().Append(service::BuildWideEvent(
          job->id, shard.assignment->id, disposition, outcome));
    }
    const int64_t latency_us = NowUs() - job->admitted_us;
    obs::SloTracker::Global().RecordGrade(shard.assignment->id, latency_us,
                                          obs::SloTracker::NowS());
    if (metered) {
      BusyUsTotal()->Increment(lap_us());
      JobsTotal()->Increment();
      ShardJobsTotal(shard.assignment->id)->Increment();
      // The exemplar ties this latency bucket to the trace that produced
      // it — how a p99 bucket on a dashboard names a concrete trace.
      GradeDurationUs(shard.assignment->id)
          ->RecordWithExemplar(latency_us, outcome.trace_id);
    }
    // The quota slot stays held through grading ("in-system" covers queued
    // and grading both, so a shard can never exceed its quota) and frees
    // immediately BEFORE the result publishes: anyone who has observed the
    // outcome — Wait(), a drained batch — also observes the freed slot.
    size_t depth = shard.depth.fetch_sub(1, std::memory_order_acq_rel) - 1;
    if (metered) {
      ShardDepthGauge(shard.assignment->id)
          ->Set(static_cast<int64_t>(depth));
    }
    {
      std::lock_guard<std::mutex> lock(results_mu_);
      results_[job->ticket] = std::move(outcome);
    }
    results_cv_.notify_all();
  }
  if (metered) WorkersGauge()->Add(-1);
}

bool ShardedScheduler::FindShard(const std::string& assignment_id,
                                 size_t* index) const {
  auto it = shard_by_id_.find(assignment_id);
  if (it == shard_by_id_.end()) return false;
  *index = it->second;
  return true;
}

Status ShardedScheduler::Admit(size_t shard_index, const std::string& source,
                               const std::string& id, const char* cache,
                               const obs::TraceContext& trace,
                               uint64_t* ticket) {
  Shard& shard = *shards_[shard_index];
  const bool metered = obs::Registry::Global().enabled();
  // Reserve a quota slot first; the shared queue cannot overflow while
  // every shard honours its quota.
  size_t depth = shard.depth.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (depth > options_.shard_queue_capacity) {
    shard.depth.fetch_sub(1, std::memory_order_acq_rel);
    if (metered) ShedTotal(shard.assignment->id)->Increment();
    // A shed is an availability-bad SLO event: it burns the tenant's error
    // budget even though no grading work ran.
    obs::SloTracker::Global().RecordShed(shard.assignment->id,
                                         obs::SloTracker::NowS());
    return Status::Unavailable(
        "assignment '" + shard.assignment->id + "' is at its admission "
        "quota (" + std::to_string(options_.shard_queue_capacity) +
        " in flight); retry shortly");
  }
  uint64_t t = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.TryPush(Job{t, shard_index, id, source, cache, NowUs(),
                          trace})) {
    shard.depth.fetch_sub(1, std::memory_order_acq_rel);
    return Status::Unavailable("scheduler is shutting down");
  }
  if (metered) {
    QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
    ShardDepthGauge(shard.assignment->id)->Set(static_cast<int64_t>(depth));
  }
  *ticket = t;
  return Status::OK();
}

Status ShardedScheduler::Submit(const std::string& assignment_id,
                                const std::string& source,
                                const std::string& id, uint64_t* ticket,
                                const obs::TraceContext& trace) {
  size_t shard_index;
  if (!FindShard(assignment_id, &shard_index)) {
    return Status::NotFound("unknown assignment '" + assignment_id + "'");
  }
  return Admit(shard_index, source, id, /*cache=*/"off", trace, ticket);
}

service::GradingOutcome ShardedScheduler::Wait(uint64_t ticket) {
  return TakeResult(ticket);
}

service::GradingOutcome ShardedScheduler::TakeResult(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(results_mu_);
  results_cv_.wait(lock,
                   [this, ticket] { return results_.count(ticket) > 0; });
  auto node = results_.extract(ticket);
  return std::move(node.mapped());
}

std::vector<MixedOutcome> ShardedScheduler::GradeMixedBatch(
    const std::vector<MixedItem>& items, BatchStats* stats) {
  BatchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = BatchStats();
  stats->submissions = items.size();
  std::vector<MixedOutcome> outcomes(items.size());

  // Same chaos rule as BatchScheduler: dedup/cache off while an injection
  // campaign runs, so every submission crosses the fault points.
  const bool caching = cache_ != nullptr && !fault::Injector::Get().enabled();
  const bool recording = obs::EventLog::Global().enabled();
  auto record = [&items, recording](size_t i, const char* cache,
                                    const service::GradingOutcome& outcome) {
    if (!recording) return;
    obs::EventLog::Global().Append(service::BuildWideEvent(
        items[i].id, items[i].assignment, cache, outcome));
  };

  // Dedup groups keyed by (shard, token fingerprint): duplicates coalesce
  // onto their leader's pipeline run without consuming extra quota.
  struct Group {
    uint64_t ticket = 0;
    size_t shard = 0;
    uint64_t fingerprint = 0;
    std::vector<size_t> indexes;
  };
  std::vector<Group> groups;
  struct Key {
    size_t shard;
    uint64_t fingerprint;
    bool operator==(const Key& o) const {
      return shard == o.shard && fingerprint == o.fingerprint;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.fingerprint * 1099511628211ull ^
                                   k.shard);
    }
  };
  std::unordered_map<Key, size_t, KeyHash> group_by_key;

  for (size_t i = 0; i < items.size(); ++i) {
    size_t shard_index;
    if (!FindShard(items[i].assignment, &shard_index)) {
      outcomes[i].status = Status::NotFound("unknown assignment '" +
                                            items[i].assignment + "'");
      continue;
    }
    uint64_t fingerprint = 0;
    if (caching) {
      fingerprint = TokenFingerprint(items[i].source);
      Key key{shard_index, fingerprint};
      auto in_flight = group_by_key.find(key);
      if (in_flight != group_by_key.end()) {
        groups[in_flight->second].indexes.push_back(i);
        ++stats->dedup_hits;
        continue;
      }
      service::GradingOutcome cached;
      if (cache_->Lookup(items[i].assignment, fingerprint, &cached)) {
        // Re-stamp the request's own trace: the cached copy still carries
        // the trace of whichever request graded it originally.
        if (items[i].trace.valid()) {
          cached.trace_id = obs::TraceIdHex(items[i].trace);
          cached.span_id = obs::SpanIdHex(items[i].trace.span_id);
        }
        service::CountCacheDisposition("hit");
        record(i, "hit", cached);
        // A cache hit is a (near-instant) good SLO event: the tenant was
        // served successfully.
        obs::SloTracker::Global().RecordGrade(items[i].assignment, 0,
                                              obs::SloTracker::NowS());
        outcomes[i].status = Status::OK();
        outcomes[i].outcome = std::move(cached);
        outcomes[i].disposition = "hit";
        ++stats->cache_hits;
        continue;
      }
    }
    uint64_t ticket = 0;
    // Non-blocking admission: a line over its shard's quota is shed here
    // and now — one tenant's spike must not stall the whole mixed batch.
    Status admitted = Admit(shard_index, items[i].source, items[i].id,
                            caching ? "miss" : "off", items[i].trace,
                            &ticket);
    if (!admitted.ok()) {
      outcomes[i].status = std::move(admitted);
      continue;
    }
    ++stats->graded;
    Group group;
    group.ticket = ticket;
    group.shard = shard_index;
    group.fingerprint = fingerprint;
    group.indexes.push_back(i);
    if (caching) {
      group_by_key.emplace(Key{shard_index, fingerprint}, groups.size());
    }
    groups.push_back(std::move(group));
  }

  for (auto& group : groups) {
    service::GradingOutcome outcome = TakeResult(group.ticket);
    if (caching) {
      cache_->Insert(shards_[group.shard]->assignment->id, group.fingerprint,
                     outcome);
    }
    for (size_t k = 1; k < group.indexes.size(); ++k) {
      size_t i = group.indexes[k];
      service::CountCacheDisposition("dedup");
      outcomes[i].status = Status::OK();
      outcomes[i].outcome = outcome;
      // Same re-stamp as a cache hit: the follower's line answers a
      // different request (and possibly trace) than the leader's run.
      if (items[i].trace.valid()) {
        outcomes[i].outcome.trace_id = obs::TraceIdHex(items[i].trace);
        outcomes[i].outcome.span_id = obs::SpanIdHex(items[i].trace.span_id);
      }
      record(i, "dedup", outcomes[i].outcome);
      obs::SloTracker::Global().RecordGrade(items[i].assignment, 0,
                                            obs::SloTracker::NowS());
      outcomes[i].disposition = "dedup";
    }
    size_t leader = group.indexes.front();
    outcomes[leader].status = Status::OK();
    // The grading worker already counted this submission; resolve the same
    // disposition string for the batch line without double-counting.
    outcomes[leader].disposition = service::ResolveCacheDisposition(
        caching ? "miss" : "off", outcome);
    outcomes[leader].outcome = std::move(outcome);
  }
  return outcomes;
}

std::vector<std::string> ShardedScheduler::assignment_ids() const {
  std::vector<std::string> ids;
  ids.reserve(shards_.size());
  for (const auto& shard : shards_) ids.push_back(shard->assignment->id);
  return ids;
}

size_t ShardedScheduler::ShardDepth(const std::string& assignment_id) const {
  size_t index;
  if (!FindShard(assignment_id, &index)) return 0;
  return shards_[index]->depth.load(std::memory_order_acquire);
}

bool ShardedScheduler::Saturated() const {
  for (const auto& shard : shards_) {
    if (shard->depth.load(std::memory_order_acquire) <
        options_.shard_queue_capacity) {
      return false;
    }
  }
  return !shards_.empty();
}

}  // namespace jfeed::sched
