#include "sched/result_cache.h"

#include <cstdio>
#include <utility>

#include "javalang/fingerprint.h"
#include "javalang/lexer.h"
#include "obs/metrics.h"

namespace jfeed::sched {

namespace {

// Cache traffic counters, mirrored from the per-instance CacheStats into
// the process-wide registry so a scrape sees aggregate hit/miss/eviction
// rates across every scheduler (DESIGN.md §6 metric-name contract).
obs::Counter* HitsTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_cache_hits_total", "Result-cache lookups served from cache");
  return counter;
}
obs::Counter* MissesTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_cache_misses_total", "Result-cache lookups that missed");
  return counter;
}
obs::Counter* InsertionsTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_cache_insertions_total", "Result-cache entries inserted");
  return counter;
}
obs::Counter* EvictionsTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_cache_evictions_total", "Result-cache entries evicted");
  return counter;
}

}  // namespace

uint64_t TokenFingerprint(const std::string& source) {
  auto tokens = java::Lex(source);
  if (!tokens.ok()) {
    // Unlexable source: hash raw bytes under a distinct domain tag so it can
    // never collide with a token-stream hash of some other source.
    return java::FingerprintRawBytes(source);
  }
  return java::FingerprintTokenStream(*tokens);
}

std::string ResultCache::MakeKey(const std::string& assignment_id,
                                 uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return assignment_id + "/" + buf;
}

bool ResultCache::Lookup(const std::string& assignment_id,
                         uint64_t fingerprint, service::GradingOutcome* out) {
  std::string key = MakeKey(assignment_id, fingerprint);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    MissesTotal()->Increment();
    return false;
  }
  it->second.referenced = true;
  ++stats_.hits;
  HitsTotal()->Increment();
  *out = it->second.outcome;
  return true;
}

void ResultCache::Insert(const std::string& assignment_id,
                         uint64_t fingerprint,
                         service::GradingOutcome outcome) {
  std::string key = MakeKey(assignment_id, fingerprint);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.outcome = std::move(outcome);
    return;
  }
  if (entries_.size() >= max_entries_) EvictOneLocked();
  entries_[key].outcome = std::move(outcome);
  clock_.push_back(std::move(key));
  ++stats_.insertions;
  InsertionsTotal()->Increment();
}

void ResultCache::EvictOneLocked() {
  for (size_t step = 0; step < 2 * clock_.size() + 1; ++step) {
    if (hand_ >= clock_.size()) hand_ = 0;
    auto it = entries_.find(clock_[hand_]);
    if (it != entries_.end() && it->second.referenced) {
      it->second.referenced = false;  // Second chance.
      ++hand_;
      continue;
    }
    if (it != entries_.end()) entries_.erase(it);
    clock_[hand_] = std::move(clock_.back());
    clock_.pop_back();
    ++stats_.evictions;
    EvictionsTotal()->Increment();
    return;
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace jfeed::sched
