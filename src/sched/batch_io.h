#ifndef JFEED_SCHED_BATCH_IO_H_
#define JFEED_SCHED_BATCH_IO_H_

#include <string>

#include "service/pipeline.h"
#include "support/result.h"

namespace jfeed::sched {

/// One decoded input line of the NDJSON batch front end (`grade --batch`,
/// jfeedd POST /grade).
struct BatchLine {
  std::string id;          ///< Caller-chosen submission id; may be empty.
  std::string assignment;  ///< Routing key for multi-tenant jfeedd; may be
                           ///< empty (single-tenant callers omit it).
  std::string source;      ///< The Java submission text.
};

/// Parses one NDJSON input line. Two accepted shapes:
///   {"id": "s-17", "assignment": "assignment3", "source": "..."}  object
///   "void f() { ... }"                                       bare-string
/// In the object form `source` is required, `id` and `assignment` optional,
/// unknown keys with string values are ignored (forward compatibility);
/// values must be JSON strings. Standard JSON string escapes are decoded,
/// including \uXXXX (with surrogate pairs). Blank lines yield
/// kInvalidArgument — callers typically skip them before calling.
Result<BatchLine> ParseBatchLine(const std::string& line);

/// Renders one NDJSON output line: the GradingOutcome JSON with "id" and
/// "index" (position in the input stream) prepended, so outputs remain
/// joinable with inputs even though they are emitted in input order anyway.
/// The four-argument form additionally stamps the "assignment" the line was
/// routed to (multi-tenant responses).
std::string BatchOutcomeToJson(const std::string& id, size_t index,
                               const service::GradingOutcome& outcome);
std::string BatchOutcomeToJson(const std::string& id, size_t index,
                               const std::string& assignment,
                               const service::GradingOutcome& outcome);

/// Renders the NDJSON error line for an input line that failed to parse.
std::string BatchErrorToJson(size_t index, const Status& error);

/// Renders the NDJSON error line for an input line the multi-tenant daemon
/// refused: `code` is the per-line HTTP-style status (404 unknown
/// assignment, 429 admission shed), and a positive `retry_after_s` adds a
/// "retry_after_s" hint (the shed path). The line still carries id/index/
/// assignment so clients can join rejects back to their inputs.
std::string BatchRejectToJson(const std::string& id, size_t index,
                              const std::string& assignment, int code,
                              int retry_after_s, const Status& error);

}  // namespace jfeed::sched

#endif  // JFEED_SCHED_BATCH_IO_H_
