#ifndef JFEED_SCHED_BATCH_IO_H_
#define JFEED_SCHED_BATCH_IO_H_

#include <string>

#include "service/pipeline.h"
#include "support/result.h"

namespace jfeed::sched {

/// One decoded input line of the NDJSON batch front end (`grade --batch`).
struct BatchLine {
  std::string id;      ///< Caller-chosen submission id; may be empty.
  std::string source;  ///< The Java submission text.
};

/// Parses one NDJSON input line. Two accepted shapes:
///   {"id": "s-17", "source": "void f() { ... }"}   object form
///   "void f() { ... }"                              bare-string form
/// In the object form `source` is required, `id` optional, unknown keys
/// with string values are ignored (forward compatibility); values must be
/// JSON strings. Standard JSON string escapes are decoded, including
/// \uXXXX (with surrogate pairs). Blank lines yield kInvalidArgument —
/// callers typically skip them before calling.
Result<BatchLine> ParseBatchLine(const std::string& line);

/// Renders one NDJSON output line: the GradingOutcome JSON with "id" and
/// "index" (position in the input stream) prepended, so outputs remain
/// joinable with inputs even though they are emitted in input order anyway.
std::string BatchOutcomeToJson(const std::string& id, size_t index,
                               const service::GradingOutcome& outcome);

/// Renders the NDJSON error line for an input line that failed to parse.
std::string BatchErrorToJson(size_t index, const Status& error);

}  // namespace jfeed::sched

#endif  // JFEED_SCHED_BATCH_IO_H_
