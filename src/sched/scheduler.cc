#include "sched/scheduler.h"

#include <chrono>
#include <locale>
#include <utility>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/fault.h"

namespace jfeed::sched {

namespace {

// Scheduler health signals. Queue depth is a gauge (instantaneous backlog);
// jobs/busy/idle are counters so utilization can be derived from two scrapes
// as busy / (busy + idle) without the scheduler keeping rates itself.
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge = obs::Registry::Global().GetGauge(
      "jfeed_sched_queue_depth", "Jobs currently waiting in the batch queue");
  return gauge;
}
obs::Gauge* WorkersGauge() {
  static obs::Gauge* gauge = obs::Registry::Global().GetGauge(
      "jfeed_sched_workers", "Worker threads currently alive");
  return gauge;
}
obs::Counter* JobsTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_sched_jobs_total", "Jobs graded by scheduler workers");
  return counter;
}
obs::Counter* BusyUsTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_sched_busy_us_total",
      "Cumulative worker microseconds spent grading jobs");
  return counter;
}
obs::Counter* IdleUsTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_sched_idle_us_total",
      "Cumulative worker microseconds spent waiting for jobs");
  return counter;
}

/// Defensive outcome for a submission the queue rejected because shutdown
/// raced with the batch: the one-outcome-per-submission contract holds even
/// on that path.
/// libstdc++'s ctype<char> facet fills its narrow()/widen() caches lazily
/// and without synchronization; std::regex compilation hits them, so two
/// workers compiling their first pattern concurrently race on the shared
/// facet of the global locale. Touching every byte on the constructing
/// thread before workers spawn makes all later accesses pure reads.
void WarmCtypeCaches() {
  const auto& facet = std::use_facet<std::ctype<char>>(std::locale());
  for (int c = 0; c < 256; ++c) {
    facet.narrow(static_cast<char>(c), '\0');
    facet.widen(static_cast<char>(c));
  }
}

service::GradingOutcome ShutdownOutcome() {
  service::GradingOutcome outcome;
  outcome.verdict = service::Verdict::kNotGraded;
  outcome.tier = service::FeedbackTier::kParseDiagnostic;
  outcome.failure = service::FailureClass::kInternalFault;
  outcome.diagnostic = "scheduler shut down before the submission was graded";
  return outcome;
}

}  // namespace

BatchScheduler::BatchScheduler(const kb::Assignment& assignment,
                               service::PipelineOptions pipeline_options,
                               SchedulerOptions options)
    : assignment_(assignment),
      pipeline_options_(std::move(pipeline_options)),
      jobs_(options.jobs < 1 ? 1 : options.jobs),
      oracle_(std::make_shared<service::ReferenceOracle>()),
      queue_(options.queue_capacity) {
  if (options.use_result_cache) {
    cache_ = options.cache != nullptr
                 ? std::move(options.cache)
                 : std::make_shared<ResultCache>(options.cache_capacity);
  }
  if (options.use_method_cache &&
      pipeline_options_.method_cache == nullptr) {
    pipeline_options_.method_cache =
        options.method_cache != nullptr
            ? std::move(options.method_cache)
            : std::make_shared<service::MethodCache>(
                  options.method_cache_capacity);
  }
  WarmCtypeCaches();
  workers_.reserve(static_cast<size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BatchScheduler::~BatchScheduler() {
  // Drain, don't drop: closing the queue lets workers finish whatever was
  // already admitted before they observe end-of-stream and exit.
  queue_.Close();
  for (auto& worker : workers_) worker.join();
}

void BatchScheduler::WorkerLoop() {
  // The pipeline is constructed inside the worker thread so that everything
  // thread-local it reaches — the regex cache above all — belongs to this
  // worker, and so does the pipeline's recycled per-submission arena pool:
  // one worker, one pipeline, one pool means every job after warm-up is
  // graded without touching the global allocator. The shared oracle is the
  // one deliberate cross-worker memo.
  service::GradingPipeline pipeline(assignment_, pipeline_options_, oracle_);
  const bool metered = obs::Registry::Global().enabled();
  if (metered) WorkersGauge()->Add(1);
  auto mark = std::chrono::steady_clock::now();
  auto lap_us = [&mark] {
    auto now = std::chrono::steady_clock::now();
    auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(now - mark)
            .count();
    mark = now;
    return us;
  };
  while (auto job = queue_.Pop()) {
    if (metered) {
      IdleUsTotal()->Increment(lap_us());
      QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
    }
    obs::Span job_span("sched.job");
    // Grade() is total: adversarial or fault-poisoned submissions fold into
    // a degraded outcome here, inside this worker, and the other workers
    // never notice.
    service::GradingOutcome outcome = pipeline.Grade(job->source);
    job_span.End();
    // A graded "miss"/"off" that reused cached methods lands on the
    // partial_hit disposition; the worker that paid for the grade counts
    // it (hits and dedup followers are counted by the admission loop).
    const char* disposition =
        service::ResolveCacheDisposition(job->cache, outcome);
    service::CountCacheDisposition(disposition);
    if (obs::EventLog::Global().enabled()) {
      // One wide event per pipeline run, emitted by the worker that paid
      // for it; cache hits and dedup followers get theirs from the batch
      // collection loop.
      obs::EventLog::Global().Append(service::BuildWideEvent(
          job->id, assignment_.id, disposition, outcome));
    }
    if (metered) {
      BusyUsTotal()->Increment(lap_us());
      JobsTotal()->Increment();
    }
    {
      std::lock_guard<std::mutex> lock(results_mu_);
      results_[job->ticket] = std::move(outcome);
    }
    results_cv_.notify_all();
  }
  if (metered) WorkersGauge()->Add(-1);
}

Status BatchScheduler::Submit(const std::string& source, uint64_t* ticket) {
  return Submit(source, /*id=*/"", ticket);
}

Status BatchScheduler::Submit(const std::string& source,
                              const std::string& id, uint64_t* ticket) {
  uint64_t t = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.TryPush(Job{t, id, source, /*cache=*/"off"})) {
    if (queue_.closed()) {
      return Status::Unavailable("scheduler is shutting down");
    }
    return Status::Unavailable(
        "job queue full (capacity " + std::to_string(queue_.capacity()) +
        "); retry after draining results");
  }
  *ticket = t;
  if (obs::Registry::Global().enabled()) {
    QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
  }
  return Status::OK();
}

service::GradingOutcome BatchScheduler::Wait(uint64_t ticket) {
  return TakeResult(ticket);
}

service::GradingOutcome BatchScheduler::TakeResult(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(results_mu_);
  results_cv_.wait(lock,
                   [this, ticket] { return results_.count(ticket) > 0; });
  auto node = results_.extract(ticket);
  return std::move(node.mapped());
}

std::vector<service::GradingOutcome> BatchScheduler::GradeBatch(
    const std::vector<std::string>& sources) {
  BatchStats stats;
  return GradeBatchWithStats(sources, &stats);
}

std::vector<service::GradingOutcome> BatchScheduler::GradeBatchWithStats(
    const std::vector<std::string>& sources, BatchStats* stats) {
  return GradeBatchWithStats(sources, /*ids=*/{}, stats);
}

std::vector<service::GradingOutcome> BatchScheduler::GradeBatchWithStats(
    const std::vector<std::string>& sources,
    const std::vector<std::string>& ids, BatchStats* stats) {
  *stats = BatchStats();
  stats->submissions = sources.size();
  std::vector<service::GradingOutcome> outcomes(sources.size());

  // Dedup and the result cache are bypassed while an injection campaign is
  // enabled: chaos tests must observe every submission actually crossing
  // the fault points, and a fault-degraded outcome must never be replayed
  // to a healthy duplicate after the campaign ends.
  const bool caching = cache_ != nullptr && !fault::Injector::Get().enabled();

  // One group per pipeline run; duplicate submissions coalesce onto the
  // group of their first occurrence instead of grading again.
  struct Group {
    uint64_t ticket = 0;
    uint64_t fingerprint = 0;
    std::vector<size_t> indexes;
  };
  std::vector<Group> groups;
  std::unordered_map<uint64_t, size_t> group_by_fingerprint;

  // Flight-recorder plumbing: ids are parallel to sources (absent ids are
  // empty), and submissions served without a pipeline run get their wide
  // event here, since no worker ever sees them.
  static const std::string kNoId;
  auto id_of = [&ids](size_t i) -> const std::string& {
    return i < ids.size() ? ids[i] : kNoId;
  };
  const bool recording = obs::EventLog::Global().enabled();
  auto record = [this, &id_of, recording](
                    size_t i, const char* cache,
                    const service::GradingOutcome& outcome) {
    if (!recording) return;
    obs::EventLog::Global().Append(
        service::BuildWideEvent(id_of(i), assignment_.id, cache, outcome));
  };

  for (size_t i = 0; i < sources.size(); ++i) {
    uint64_t fingerprint = 0;
    if (caching) {
      fingerprint = TokenFingerprint(sources[i]);
      auto in_flight = group_by_fingerprint.find(fingerprint);
      if (in_flight != group_by_fingerprint.end()) {
        groups[in_flight->second].indexes.push_back(i);
        ++stats->dedup_hits;
        continue;
      }
      service::GradingOutcome cached;
      if (cache_->Lookup(assignment_.id, fingerprint, &cached)) {
        service::CountCacheDisposition("hit");
        record(i, "hit", cached);
        outcomes[i] = std::move(cached);
        ++stats->cache_hits;
        continue;
      }
    }
    uint64_t ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
    // Blocking admission: when the queue is full the producer stalls here
    // until a worker frees a slot, so a million-line batch never buffers
    // more than queue_capacity jobs.
    if (!queue_.Push(Job{ticket, id_of(i), sources[i],
                         caching ? "miss" : "off"})) {
      outcomes[i] = ShutdownOutcome();
      record(i, "off", outcomes[i]);
      continue;
    }
    if (obs::Registry::Global().enabled()) {
      QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
    }
    ++stats->graded;
    Group group;
    group.ticket = ticket;
    group.fingerprint = fingerprint;
    group.indexes.push_back(i);
    if (caching) group_by_fingerprint.emplace(fingerprint, groups.size());
    groups.push_back(std::move(group));
  }

  // Collect in submission order — input order is restored by index slots,
  // whatever order the workers completed in.
  for (auto& group : groups) {
    service::GradingOutcome outcome = TakeResult(group.ticket);
    if (caching) cache_->Insert(assignment_.id, group.fingerprint, outcome);
    for (size_t k = 1; k < group.indexes.size(); ++k) {
      // The group leader's event came from the worker that graded it; the
      // coalesced followers are recorded here as dedup serves.
      service::CountCacheDisposition("dedup");
      record(group.indexes[k], "dedup", outcome);
      outcomes[group.indexes[k]] = outcome;
    }
    outcomes[group.indexes.front()] = std::move(outcome);
  }
  return outcomes;
}

}  // namespace jfeed::sched

namespace jfeed::service {

std::vector<GradingOutcome> GradeBatchParallel(
    const kb::Assignment& assignment, const std::vector<std::string>& sources,
    const PipelineOptions& pipeline_options,
    const sched::SchedulerOptions& scheduler_options) {
  sched::BatchScheduler scheduler(assignment, pipeline_options,
                                  scheduler_options);
  return scheduler.GradeBatch(sources);
}

}  // namespace jfeed::service
