#include "sched/batch_io.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace jfeed::sched {

namespace {

void SkipSpace(const std::string& s, size_t* pos) {
  while (*pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[*pos]))) {
    ++*pos;
  }
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Parses the 4 hex digits of a \uXXXX escape at *pos; -1 on malformed.
int32_t ParseHex4(const std::string& s, size_t* pos) {
  if (*pos + 4 > s.size()) return -1;
  int32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    int digit = HexDigit(s[*pos + i]);
    if (digit < 0) return -1;
    value = value * 16 + digit;
  }
  *pos += 4;
  return value;
}

void AppendUtf8(int32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Parses a JSON string starting at the opening quote s[*pos].
Result<std::string> ParseJsonString(const std::string& s, size_t* pos) {
  if (*pos >= s.size() || s[*pos] != '"') {
    return Status::InvalidArgument("expected '\"' at offset " +
                                   std::to_string(*pos));
  }
  ++*pos;
  std::string out;
  while (*pos < s.size()) {
    char c = s[*pos];
    if (c == '"') {
      ++*pos;
      return out;
    }
    if (c != '\\') {
      out.push_back(c);
      ++*pos;
      continue;
    }
    if (++*pos >= s.size()) break;
    char esc = s[(*pos)++];
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        int32_t cp = ParseHex4(s, pos);
        if (cp < 0) {
          return Status::InvalidArgument("malformed \\u escape");
        }
        // Combine a surrogate pair when a low surrogate follows.
        if (cp >= 0xD800 && cp <= 0xDBFF && *pos + 1 < s.size() &&
            s[*pos] == '\\' && s[*pos + 1] == 'u') {
          size_t rewind = *pos;
          *pos += 2;
          int32_t low = ParseHex4(s, pos);
          if (low >= 0xDC00 && low <= 0xDFFF) {
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else {
            *pos = rewind;  // Unpaired; emit the high surrogate's bytes.
          }
        }
        AppendUtf8(cp, &out);
        break;
      }
      default:
        return Status::InvalidArgument(std::string("unknown escape '\\") +
                                       esc + "'");
    }
  }
  return Status::InvalidArgument("unterminated JSON string");
}

}  // namespace

Result<BatchLine> ParseBatchLine(const std::string& line) {
  size_t pos = 0;
  SkipSpace(line, &pos);
  if (pos >= line.size()) {
    return Status::InvalidArgument("blank line");
  }
  BatchLine out;
  if (line[pos] == '"') {
    // Bare-string form: the whole line is the source.
    JFEED_ASSIGN_OR_RETURN(out.source, ParseJsonString(line, &pos));
    SkipSpace(line, &pos);
    if (pos != line.size()) {
      return Status::InvalidArgument("trailing data after JSON string");
    }
    return out;
  }
  if (line[pos] != '{') {
    return Status::InvalidArgument(
        "expected a JSON object or string, got '" +
        std::string(1, line[pos]) + "'");
  }
  ++pos;
  bool have_source = false;
  bool first = true;
  for (;;) {
    SkipSpace(line, &pos);
    if (pos < line.size() && line[pos] == '}') {
      ++pos;
      break;
    }
    if (!first) {
      if (pos >= line.size() || line[pos] != ',') {
        return Status::InvalidArgument("expected ',' or '}' in object");
      }
      ++pos;
      SkipSpace(line, &pos);
    }
    first = false;
    std::string key;
    JFEED_ASSIGN_OR_RETURN(key, ParseJsonString(line, &pos));
    SkipSpace(line, &pos);
    if (pos >= line.size() || line[pos] != ':') {
      return Status::InvalidArgument("expected ':' after key \"" + key +
                                     "\"");
    }
    ++pos;
    SkipSpace(line, &pos);
    std::string value;
    JFEED_ASSIGN_OR_RETURN(value, ParseJsonString(line, &pos));
    if (key == "source") {
      out.source = std::move(value);
      have_source = true;
    } else if (key == "id") {
      out.id = std::move(value);
    } else if (key == "assignment") {
      out.assignment = std::move(value);
    }
    // Unknown string-valued keys are ignored.
  }
  SkipSpace(line, &pos);
  if (pos != line.size()) {
    return Status::InvalidArgument("trailing data after JSON object");
  }
  if (!have_source) {
    return Status::InvalidArgument("object has no \"source\" key");
  }
  return out;
}

namespace {

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string BatchOutcomeToJson(const std::string& id, size_t index,
                               const service::GradingOutcome& outcome) {
  std::string body = service::OutcomeToJson(outcome);
  // Splice id/index into the outcome object: {"id":...,"index":N,<rest>.
  std::string out = "{\"id\":";
  out += id.empty() ? "null" : JsonQuote(id);
  out += ",\"index\":" + std::to_string(index) + ",";
  out += body.substr(1);
  return out;
}

std::string BatchOutcomeToJson(const std::string& id, size_t index,
                               const std::string& assignment,
                               const service::GradingOutcome& outcome) {
  std::string body = service::OutcomeToJson(outcome);
  std::string out = "{\"id\":";
  out += id.empty() ? "null" : JsonQuote(id);
  out += ",\"index\":" + std::to_string(index);
  out += ",\"assignment\":" + JsonQuote(assignment) + ",";
  out += body.substr(1);
  return out;
}

std::string BatchErrorToJson(size_t index, const Status& error) {
  return "{\"id\":null,\"index\":" + std::to_string(index) +
         ",\"error\":" + JsonQuote(error.ToString()) + "}";
}

std::string BatchRejectToJson(const std::string& id, size_t index,
                              const std::string& assignment, int code,
                              int retry_after_s, const Status& error) {
  std::string out = "{\"id\":";
  out += id.empty() ? "null" : JsonQuote(id);
  out += ",\"index\":" + std::to_string(index);
  out += ",\"assignment\":" + JsonQuote(assignment);
  out += ",\"code\":" + std::to_string(code);
  if (retry_after_s > 0) {
    out += ",\"retry_after_s\":" + std::to_string(retry_after_s);
  }
  out += ",\"error\":" + JsonQuote(error.ToString()) + "}";
  return out;
}

}  // namespace jfeed::sched
