#ifndef JFEED_SCHED_BOUNDED_QUEUE_H_
#define JFEED_SCHED_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace jfeed::sched {

/// A bounded multi-producer/multi-consumer FIFO queue, the admission-control
/// core of the batch scheduler. Capacity is a hard bound: producers either
/// observe backpressure immediately (TryPush returns false on a full queue)
/// or block until a consumer frees a slot (Push) — the queue never buffers
/// beyond its capacity.
///
/// Close() starts a clean shutdown: producers are rejected from then on,
/// consumers drain whatever was already admitted and then see std::nullopt.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admission: false when the queue is full or closed.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking admission: waits for a free slot; false when the queue was
  /// closed before the value could be admitted.
  bool Push(T value) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking removal: waits for an item; std::nullopt once the queue is
  /// closed and drained.
  std::optional<T> Pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;  // Closed and drained.
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Rejects future pushes and wakes every waiter. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace jfeed::sched

#endif  // JFEED_SCHED_BOUNDED_QUEUE_H_
