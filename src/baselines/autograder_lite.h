#ifndef JFEED_BASELINES_AUTOGRADER_LITE_H_
#define JFEED_BASELINES_AUTOGRADER_LITE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "javalang/ast.h"
#include "synth/generator.h"
#include "testing/functional.h"

namespace jfeed::baselines {

/// Outcome of a repair search.
struct RepairResult {
  bool repaired = false;
  int repairs = 0;              ///< Rule applications in the found repair.
  uint64_t candidates_tried = 0;  ///< Candidate programs executed.
  bool budget_exhausted = false;
  /// Human-readable description of each applied rule, the feedback
  /// AutoGrader derives ("change X to Y").
  std::vector<std::string> repair_feedback;
};

/// A simplified reimplementation of AutoGrader (Singh et al., PLDI'13).
/// The real system compiles the student submission plus an error model into
/// a Sketch program and asks the synthesizer for the minimal set of rule
/// applications that makes it functionally equivalent to one reference
/// solution. We keep the search semantics — minimal number of error-model
/// rule applications, equivalence checked against the reference on the
/// functional suite — but replace the SAT-based synthesizer with explicit
/// breadth-first search over rule combinations, which exhibits the same
/// qualitative behaviour the paper reports: cost grows combinatorially with
/// the number of repairs ("its performance degrades considerably after four
/// or more repairs").
class AutoGraderLite {
 public:
  AutoGraderLite(const synth::SubmissionTemplate& model,
                 const testing::FunctionalSuite& suite)
      : model_(model), suite_(suite) {}

  /// Searches for the minimal repair of the submission identified by
  /// `choice` (its error-model coordinates). `max_repairs` bounds the
  /// search depth; `max_candidates` bounds the number of candidate
  /// programs executed (the "Sketch blow-up" budget).
  Result<RepairResult> Repair(const std::vector<size_t>& choice,
                              int max_repairs = 6,
                              uint64_t max_candidates = 2'000'000);

 private:
  const synth::SubmissionTemplate& model_;
  const testing::FunctionalSuite& suite_;
};

}  // namespace jfeed::baselines

#endif  // JFEED_BASELINES_AUTOGRADER_LITE_H_
