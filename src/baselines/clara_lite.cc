#include "baselines/clara_lite.h"

#include <algorithm>

namespace jfeed::baselines {

Result<VariableTraces> ClaraLite::CollectTraces(
    const java::CompilationUnit& unit, const std::string& method,
    const std::vector<std::vector<interp::Value>>& inputs,
    const std::map<std::string, std::string>& files,
    int64_t max_trace_events, size_t* events_out) {
  interp::Interpreter interpreter(unit, files);
  VariableTraces traces;
  size_t total_events = 0;
  for (const auto& input : inputs) {
    std::vector<interp::TraceEvent> events;
    interp::ExecOptions options;
    options.trace = &events;
    options.max_trace_events = max_trace_events;
    auto result = interpreter.Call(method, input, options);
    total_events += events.size();
    if (!result.ok()) {
      if (events_out != nullptr) *events_out = total_events;
      return result.status();
    }
    if (static_cast<int64_t>(events.size()) >= max_trace_events) {
      if (events_out != nullptr) *events_out = total_events;
      return Status::Timeout("trace budget exhausted");
    }
    for (const auto& event : events) {
      traces[event.var].push_back(event.value);
    }
    traces["<out>"].push_back(result->stdout_text);
  }
  if (events_out != nullptr) *events_out = total_events;
  return traces;
}

TraceMatchResult ClaraLite::Compare(const VariableTraces& reference,
                                    const VariableTraces& submission) {
  TraceMatchResult result;
  result.executed = true;
  for (const auto& [var, trace] : reference) {
    result.trace_events += trace.size();
  }
  for (const auto& [var, trace] : submission) {
    result.trace_events += trace.size();
  }
  // Greedy bijective matching on identical whole traces. "<out>" must match
  // "<out>" (console output is positional in CLARA).
  std::vector<const std::vector<std::string>*> ref_traces;
  std::vector<bool> used;
  std::vector<std::string> ref_names;
  for (const auto& [var, trace] : reference) {
    if (var == "<out>") continue;
    ref_names.push_back(var);
    ref_traces.push_back(&trace);
    used.push_back(false);
  }
  int matched = 0;
  int unmatched = 0;
  for (const auto& [var, trace] : submission) {
    if (var == "<out>") continue;
    bool found = false;
    for (size_t i = 0; i < ref_traces.size(); ++i) {
      if (!used[i] && *ref_traces[i] == trace) {
        used[i] = true;
        found = true;
        break;
      }
    }
    if (found) {
      ++matched;
    } else {
      ++unmatched;
    }
  }
  // Reference variables with no partner also count as repairs.
  for (size_t i = 0; i < used.size(); ++i) {
    if (!used[i]) ++unmatched;
  }
  auto out_ref = reference.find("<out>");
  auto out_sub = submission.find("<out>");
  bool out_matches = out_ref != reference.end() &&
                     out_sub != submission.end() &&
                     out_ref->second == out_sub->second;
  result.matched_variables = matched;
  result.unmatched_variables = unmatched;
  result.matched = unmatched == 0 && out_matches;
  return result;
}

Result<ClaraLite::Clustering> ClaraLite::Cluster(
    const std::vector<const java::CompilationUnit*>& units,
    const std::string& method,
    const std::vector<std::vector<interp::Value>>& inputs,
    const std::map<std::string, std::string>& files) {
  Clustering clustering;
  std::vector<VariableTraces> representatives;
  for (size_t i = 0; i < units.size(); ++i) {
    JFEED_ASSIGN_OR_RETURN(
        VariableTraces traces,
        CollectTraces(*units[i], method, inputs, files));
    bool placed = false;
    for (size_t c = 0; c < representatives.size(); ++c) {
      if (Compare(representatives[c], traces).matched) {
        clustering.clusters[c].push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) {
      representatives.push_back(std::move(traces));
      clustering.clusters.push_back({i});
    }
  }
  return clustering;
}

}  // namespace jfeed::baselines
