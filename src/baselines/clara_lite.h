#ifndef JFEED_BASELINES_CLARA_LITE_H_
#define JFEED_BASELINES_CLARA_LITE_H_

#include <map>
#include <string>
#include <vector>

#include "interp/interpreter.h"
#include "javalang/ast.h"
#include "support/result.h"

namespace jfeed::baselines {

/// Per-variable value sequence over all inputs — CLARA's "variable trace".
using VariableTraces = std::map<std::string, std::vector<std::string>>;

/// Outcome of comparing a submission against one reference by traces.
struct TraceMatchResult {
  bool executed = false;       ///< False on runtime error / trace budget hit.
  bool matched = false;        ///< Bijection between variable traces exists.
  int matched_variables = 0;
  int unmatched_variables = 0;  ///< Lower bound on CLARA repairs.
  size_t trace_events = 0;      ///< Total events recorded (cost driver).
  bool budget_exhausted = false;
};

/// A simplified reimplementation of CLARA (Gulwani et al., 2016/2018).
/// CLARA clusters correct submissions by their variable traces on a set of
/// inputs, picks one representative per cluster, and repairs an incorrect
/// submission against the representative with the fewest trace differences.
/// We keep the trace model — every assignment of every scalar variable is
/// recorded and compared *as a whole* — which reproduces the two behaviours
/// the paper's comparison leans on: (a) whole-trace rigidity (functionally
/// similar programs with different variable structure land in different
/// clusters, Fig. 8), and (b) cost proportional to the dynamic iteration
/// count, so large inputs (k = 100,000) blow past any reasonable budget
/// while static pattern matching is unaffected.
class ClaraLite {
 public:
  /// Runs `method` on every input tuple and concatenates the per-variable
  /// assignment sequences. The standard output is modeled as the pseudo
  /// variable "<out>" (CLARA treats console output as another variable).
  static Result<VariableTraces> CollectTraces(
      const java::CompilationUnit& unit, const std::string& method,
      const std::vector<std::vector<interp::Value>>& inputs,
      const std::map<std::string, std::string>& files = {},
      int64_t max_trace_events = 10'000'000, size_t* events_out = nullptr);

  /// Compares submission traces against reference traces: greedy bijective
  /// matching of variables with *identical* whole traces (this strictness
  /// is CLARA's; partial matches count as repairs).
  static TraceMatchResult Compare(const VariableTraces& reference,
                                  const VariableTraces& submission);

  /// Clusters units by their exact trace signature; returns cluster sizes
  /// and representative indexes (first member).
  struct Clustering {
    std::vector<std::vector<size_t>> clusters;  ///< Indexes into the input.
  };
  static Result<Clustering> Cluster(
      const std::vector<const java::CompilationUnit*>& units,
      const std::string& method,
      const std::vector<std::vector<interp::Value>>& inputs,
      const std::map<std::string, std::string>& files = {});
};

}  // namespace jfeed::baselines

#endif  // JFEED_BASELINES_CLARA_LITE_H_
