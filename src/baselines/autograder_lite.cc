#include "baselines/autograder_lite.h"

#include <functional>

#include "javalang/parser.h"

namespace jfeed::baselines {

Result<RepairResult> AutoGraderLite::Repair(const std::vector<size_t>& choice,
                                            int max_repairs,
                                            uint64_t max_candidates) {
  // Expected outputs come from the reference solution (index 0), the single
  // reference AutoGrader compares against.
  JFEED_ASSIGN_OR_RETURN(java::CompilationUnit reference,
                         java::Parse(model_.Generate(0)));
  JFEED_ASSIGN_OR_RETURN(std::vector<std::string> expected,
                         testing::ComputeExpectedOutputs(reference, suite_));

  RepairResult result;
  const auto& sites = model_.sites();

  auto equivalent = [&](const std::vector<size_t>& candidate) -> bool {
    ++result.candidates_tried;
    auto unit = java::Parse(model_.Instantiate(candidate));
    if (!unit.ok()) return false;
    return testing::RunSuite(*unit, suite_, expected).passed;
  };

  // Depth 0: the submission may already be functionally correct.
  if (equivalent(choice)) {
    result.repaired = true;
    result.repairs = 0;
    return result;
  }

  // Iterative deepening over the number of rule applications. At depth d we
  // change exactly d sites (every combination of sites, every alternative
  // variant per changed site) — the explicit analogue of Sketch exploring
  // the error-model choice space.
  std::vector<size_t> candidate = choice;
  for (int depth = 1; depth <= max_repairs; ++depth) {
    std::vector<size_t> changed_sites;
    bool found = false;
    std::function<bool(size_t)> recurse = [&](size_t first_site) -> bool {
      if (result.candidates_tried >= max_candidates) {
        result.budget_exhausted = true;
        return false;
      }
      if (static_cast<int>(changed_sites.size()) == depth) {
        return equivalent(candidate);
      }
      for (size_t s = first_site; s < sites.size(); ++s) {
        size_t original = candidate[s];
        changed_sites.push_back(s);
        for (size_t v = 0; v < sites[s].variants.size(); ++v) {
          if (v == original) continue;
          candidate[s] = v;
          if (recurse(s + 1)) return true;
          if (result.budget_exhausted) break;
        }
        candidate[s] = original;
        changed_sites.pop_back();
        if (result.budget_exhausted) break;
      }
      return false;
    };
    found = recurse(0);
    if (found) {
      result.repaired = true;
      result.repairs = depth;
      for (size_t s = 0; s < sites.size(); ++s) {
        if (candidate[s] != choice[s]) {
          result.repair_feedback.push_back(
              "change \"" + sites[s].variants[choice[s]] + "\" to \"" +
              sites[s].variants[candidate[s]] + "\"");
        }
      }
      return result;
    }
    if (result.budget_exhausted) break;
  }
  return result;
}

}  // namespace jfeed::baselines
