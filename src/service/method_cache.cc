#include "service/method_cache.h"

#include <cstdio>
#include <utility>

#include "javalang/parser.h"
#include "obs/metrics.h"
#include "support/fault.h"

namespace jfeed::service {

namespace {

// Method-cache traffic counters, mirrored into the process-wide registry
// (DESIGN.md §6 metric-name contract). Distinct from the jfeed_cache_*
// family: one submission performs one result-cache lookup but N method
// lookups, so mixing the two would make both hit rates meaningless.
obs::Counter* HitsTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_method_cache_hits_total",
      "Method-cache lookups served from a pinned entry");
  return counter;
}
obs::Counter* MissesTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_method_cache_misses_total", "Method-cache lookups that missed");
  return counter;
}
obs::Counter* InsertionsTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_method_cache_insertions_total", "Method-cache entries inserted");
  return counter;
}
obs::Counter* EvictionsTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_method_cache_evictions_total", "Method-cache entries evicted");
  return counter;
}
obs::Counter* FallbacksTotal() {
  static obs::Counter* counter = obs::Registry::Global().GetCounter(
      "jfeed_method_cache_fallbacks_total",
      "Method-cache lookups that errored and forced a full regrade");
  return counter;
}

}  // namespace

std::string MethodCache::MakeKey(const std::string& assignment_id,
                                 uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return assignment_id + "/" + buf;
}

Result<std::shared_ptr<MethodEntry>> MethodCache::Lookup(
    const std::string& assignment_id, uint64_t fingerprint) {
  // Open-coded JFEED_FAULT_POINT(points::kMethodCacheLookup): same crossing
  // semantics, but an injected failure is counted as a fallback before it
  // propagates, so the chaos suite can assert metrics coherence.
  if (fault::Injector::Get().enabled()) {
    Status status =
        fault::Injector::Get().MaybeFail(fault::points::kMethodCacheLookup);
    if (!status.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.fallbacks;
      }
      FallbacksTotal()->Increment();
      return status;
    }
  }
  std::string key = MakeKey(assignment_id, fingerprint);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    MissesTotal()->Increment();
    return std::shared_ptr<MethodEntry>();
  }
  it->second.referenced = true;
  ++stats_.hits;
  HitsTotal()->Increment();
  return it->second.entry;
}

std::shared_ptr<MethodEntry> MethodCache::Insert(
    const std::string& assignment_id, uint64_t fingerprint,
    std::shared_ptr<MethodEntry> entry) {
  std::string key = MakeKey(assignment_id, fingerprint);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Insert race: keep the published entry so both workers converge on one
    // cell store; the loser's entry dies with its shared_ptr.
    return it->second.entry;
  }
  if (entries_.size() >= max_entries_) EvictOneLocked();
  entries_[key].entry = entry;
  clock_.push_back(std::move(key));
  ++stats_.insertions;
  InsertionsTotal()->Increment();
  return entry;
}

Result<std::shared_ptr<MethodEntry>> MethodCache::BuildEntry(
    const java::Method& method) {
  if (method.norm_source.empty()) {
    return Status::InvalidArgument(
        "method has no normalized source (hand-built AST?)");
  }
  auto entry = std::make_shared<MethodEntry>();
  // Everything the entry pins — re-parsed AST nodes and the EPDG's
  // synthesized expression forms — must allocate from the entry's own
  // arena, not whatever recycled worker arena is currently in scope.
  java::AstArenaScope scope(&entry->memory.arena);
  JFEED_ASSIGN_OR_RETURN(entry->unit, java::Parse(method.norm_source));
  if (entry->unit.methods.size() != 1) {
    return Status::Internal("normalized method source re-parsed to " +
                            std::to_string(entry->unit.methods.size()) +
                            " methods");
  }
  JFEED_ASSIGN_OR_RETURN(
      pdg::Epdg graph,
      pdg::BuildEpdg(entry->unit.methods[0], &entry->memory));
  entry->graph = std::make_unique<pdg::Epdg>(std::move(graph));
  // Freeze at publish time: HasEdge() on a shared entry must be a pure
  // read, never a first-call CSR build racing across workers.
  entry->graph->FreezeAdjacency();
  return entry;
}

void MethodCache::EvictOneLocked() {
  for (size_t step = 0; step < 2 * clock_.size() + 1; ++step) {
    if (hand_ >= clock_.size()) hand_ = 0;
    auto it = entries_.find(clock_[hand_]);
    if (it != entries_.end() && it->second.referenced) {
      it->second.referenced = false;  // Second chance.
      ++hand_;
      continue;
    }
    if (it != entries_.end()) entries_.erase(it);
    clock_[hand_] = std::move(clock_.back());
    clock_.pop_back();
    ++stats_.evictions;
    EvictionsTotal()->Increment();
    return;
  }
}

MethodCacheStats MethodCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t MethodCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace jfeed::service
