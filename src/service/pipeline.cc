#include "service/pipeline.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <utility>

#include "core/ast_matcher.h"
#include "core/expr_pattern.h"
#include "core/feedback.h"
#include "core/pattern.h"
#include "javalang/analysis.h"
#include "javalang/parser.h"
#include "javalang/printer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pdg/epdg.h"
#include "support/fault.h"

namespace jfeed::service {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kParse: return "parse";
    case Stage::kEpdg: return "epdg";
    case Stage::kMatch: return "match";
    case Stage::kFunctional: return "functional";
    case Stage::kComplete: return "complete";
  }
  return "unknown";
}

const char* FailureClassName(FailureClass failure) {
  switch (failure) {
    case FailureClass::kNone: return "none";
    case FailureClass::kParseError: return "parse_error";
    case FailureClass::kTimeout: return "timeout";
    case FailureClass::kResourceExhausted: return "resource_exhausted";
    case FailureClass::kInternalFault: return "internal_fault";
  }
  return "unknown";
}

const char* FeedbackTierName(FeedbackTier tier) {
  switch (tier) {
    case FeedbackTier::kFullEpdg: return "full_epdg";
    case FeedbackTier::kAstOnly: return "ast_only";
    case FeedbackTier::kParseDiagnostic: return "parse_diagnostic";
  }
  return "unknown";
}

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kCorrect: return "correct";
    case Verdict::kIncorrect: return "incorrect";
    case Verdict::kSpecMismatch: return "spec_mismatch";
    case Verdict::kNotGraded: return "not_graded";
  }
  return "unknown";
}

FailureClass ClassifyFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return FailureClass::kNone;
    case StatusCode::kParseError:
    case StatusCode::kSemanticError:
      return FailureClass::kParseError;
    case StatusCode::kTimeout:
      return FailureClass::kTimeout;
    case StatusCode::kResourceExhausted:
      return FailureClass::kResourceExhausted;
    default:
      return FailureClass::kInternalFault;
  }
}

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// --- Observability instruments ----------------------------------------------
//
// Metric names here are part of the monitoring contract (DESIGN.md §6).
// Handles resolve once per process; updates are thread-local shard writes
// that no-op until a sink enables the registry.

/// Per-stage wall-time distribution, labeled by stage name.
obs::Histogram* StageDurationHistogram(Stage stage) {
  static obs::Histogram* histograms[] = {
      obs::Registry::Global().GetHistogram(
          "jfeed_stage_duration_us", "Pipeline stage wall time (microseconds)",
          {{"stage", "parse"}}),
      obs::Registry::Global().GetHistogram(
          "jfeed_stage_duration_us", "Pipeline stage wall time (microseconds)",
          {{"stage", "epdg"}}),
      obs::Registry::Global().GetHistogram(
          "jfeed_stage_duration_us", "Pipeline stage wall time (microseconds)",
          {{"stage", "match"}}),
      obs::Registry::Global().GetHistogram(
          "jfeed_stage_duration_us", "Pipeline stage wall time (microseconds)",
          {{"stage", "functional"}}),
  };
  size_t index = static_cast<size_t>(stage);
  return index < 4 ? histograms[index] : histograms[0];
}

/// One counter per degradation-ladder rung — the chaos suite asserts these
/// move when a fault forces a rung drop.
obs::Counter* TierCounter(FeedbackTier tier) {
  static obs::Counter* counters[] = {
      obs::Registry::Global().GetCounter(
          "jfeed_outcomes_total", "Graded submissions by feedback tier",
          {{"tier", "full_epdg"}}),
      obs::Registry::Global().GetCounter(
          "jfeed_outcomes_total", "Graded submissions by feedback tier",
          {{"tier", "ast_only"}}),
      obs::Registry::Global().GetCounter(
          "jfeed_outcomes_total", "Graded submissions by feedback tier",
          {{"tier", "parse_diagnostic"}}),
  };
  size_t index = static_cast<size_t>(tier);
  return index < 3 ? counters[index] : counters[0];
}

obs::Counter* FailureCounter(FailureClass failure) {
  static obs::Counter* counters[] = {
      nullptr,  // kNone: healthy runs are counted by tier, not failure.
      obs::Registry::Global().GetCounter(
          "jfeed_failures_total", "Grading failures by class",
          {{"class", "parse_error"}}),
      obs::Registry::Global().GetCounter(
          "jfeed_failures_total", "Grading failures by class",
          {{"class", "timeout"}}),
      obs::Registry::Global().GetCounter(
          "jfeed_failures_total", "Grading failures by class",
          {{"class", "resource_exhausted"}}),
      obs::Registry::Global().GetCounter(
          "jfeed_failures_total", "Grading failures by class",
          {{"class", "internal_fault"}}),
  };
  size_t index = static_cast<size_t>(failure);
  return index < 5 ? counters[index] : nullptr;
}

obs::Counter* VerdictCounter(Verdict verdict) {
  static obs::Counter* counters[] = {
      obs::Registry::Global().GetCounter("jfeed_verdicts_total",
                                         "Grading verdicts",
                                         {{"verdict", "correct"}}),
      obs::Registry::Global().GetCounter("jfeed_verdicts_total",
                                         "Grading verdicts",
                                         {{"verdict", "incorrect"}}),
      obs::Registry::Global().GetCounter("jfeed_verdicts_total",
                                         "Grading verdicts",
                                         {{"verdict", "spec_mismatch"}}),
      obs::Registry::Global().GetCounter("jfeed_verdicts_total",
                                         "Grading verdicts",
                                         {{"verdict", "not_graded"}}),
  };
  size_t index = static_cast<size_t>(verdict);
  return index < 4 ? counters[index] : counters[3];
}

/// Rolls one finished outcome into the tier/verdict/failure counters — the
/// per-rung accounting the chaos suite checks for coherence after faults.
void FinishObservation(const GradingOutcome& outcome) {
  TierCounter(outcome.tier)->Increment();
  VerdictCounter(outcome.verdict)->Increment();
  if (obs::Counter* failures = FailureCounter(outcome.failure)) {
    failures->Increment();
  }
}

// --- AST-pattern-only fallback ---------------------------------------------
//
// When the EPDG builder or the graph matcher fails (infrastructure fault,
// injected or real), the pipeline falls back to checking each pattern node
// against the flat list of statement contents of the submission: the same
// normalized expression text the EPDG nodes would carry, but with no
// structural edges and therefore no constraints. The resulting feedback is
// weaker — presence/absence per pattern — but always available for any
// submission that parses.

/// One expression-bearing statement of a method: its normalized content
/// text, the variables it mentions, and (when available) its expression AST
/// for the AST matching backend.
struct StmtFact {
  std::string content;
  std::set<std::string> vars;
  const java::Expr* expr = nullptr;  ///< Borrowed from the unit.
  java::ExprPtr owned;               ///< Set when the expr was re-parsed.
};

void AddExprFact(const java::Expr& e, std::vector<StmtFact>* out) {
  StmtFact fact;
  fact.content = java::ExprToString(e);
  fact.vars = java::VarsMentioned(e);
  fact.expr = &e;
  out->push_back(std::move(fact));
}

void CollectFacts(const java::Stmt& s, std::vector<StmtFact>* out) {
  switch (s.kind) {
    case java::StmtKind::kBlock:
      for (const auto& child : s.body) CollectFacts(*child, out);
      return;
    case java::StmtKind::kLocalVarDecl:
      for (const auto& decl : s.decls) {
        StmtFact fact;
        fact.content = s.decl_type.ToString() + " " + decl.name;
        fact.vars.insert(decl.name);
        if (decl.init) {
          fact.content += " = " + java::ExprToString(*decl.init);
          for (const auto& v : java::VarsMentioned(*decl.init)) {
            fact.vars.insert(v);
          }
        }
        // Re-parse "int x = e" as the assignment expression "x = e" so the
        // AST backend can unify against it (mirrors pdg::Node::ast).
        auto expr = core::ContentToExpr(fact.content);
        if (expr.ok()) {
          fact.owned = std::move(expr).value();
          fact.expr = fact.owned.get();
        }
        out->push_back(std::move(fact));
      }
      return;
    case java::StmtKind::kExprStmt:
      if (s.expr) AddExprFact(*s.expr, out);
      return;
    case java::StmtKind::kIf:
      if (s.expr) AddExprFact(*s.expr, out);
      if (s.then_branch) CollectFacts(*s.then_branch, out);
      if (s.else_branch) CollectFacts(*s.else_branch, out);
      return;
    case java::StmtKind::kWhile:
    case java::StmtKind::kDoWhile:
      if (s.expr) AddExprFact(*s.expr, out);
      if (s.loop_body) CollectFacts(*s.loop_body, out);
      return;
    case java::StmtKind::kFor:
      if (s.for_init) CollectFacts(*s.for_init, out);
      if (s.expr) AddExprFact(*s.expr, out);
      for (const auto& update : s.for_update) AddExprFact(*update, out);
      if (s.loop_body) CollectFacts(*s.loop_body, out);
      return;
    case java::StmtKind::kSwitch:
      if (s.expr) AddExprFact(*s.expr, out);
      for (const auto& arm : s.switch_cases) {
        for (const auto& stmt : arm.body) CollectFacts(*stmt, out);
      }
      return;
    case java::StmtKind::kReturn: {
      StmtFact fact;
      fact.content = "return";
      if (s.expr) {
        fact.content += " " + java::ExprToString(*s.expr);
        fact.vars = java::VarsMentioned(*s.expr);
        fact.expr = s.expr.get();
      }
      out->push_back(std::move(fact));
      return;
    }
    case java::StmtKind::kBreak:
    case java::StmtKind::kContinue:
      out->push_back(
          {s.kind == java::StmtKind::kBreak ? "break" : "continue", {},
           nullptr, nullptr});
      return;
  }
}

enum class NodePresence { kExact, kApprox, kMissing };

/// Does `node` match any statement of the method, and how well? Exact via
/// the AST template (when authored) or the exact regex; approximate via r̂.
NodePresence ProbeNode(const core::PatternNode& node,
                       const std::vector<StmtFact>& facts) {
  if (node.ast_exact.empty() && node.exact.empty() && node.approx.empty()) {
    // A node with no expression template (e.g. a bare kCond slot) only
    // constrains graph structure, which this tier cannot see: trivially
    // present.
    return NodePresence::kExact;
  }
  for (const auto& fact : facts) {
    if (!node.ast_exact.empty()) {
      if (fact.expr != nullptr && node.ast_exact.Matches(*fact.expr, {})) {
        return NodePresence::kExact;
      }
    } else if (!node.exact.empty()) {
      for (const auto& gamma :
           core::EnumerateInjections(node.exact.variables(), fact.vars)) {
        if (node.exact.Matches(fact.content, gamma)) {
          return NodePresence::kExact;
        }
      }
    }
  }
  if (!node.approx.empty()) {
    for (const auto& fact : facts) {
      for (const auto& gamma :
           core::EnumerateInjections(node.approx.variables(), fact.vars)) {
        if (node.approx.Matches(fact.content, gamma)) {
          return NodePresence::kApprox;
        }
      }
    }
  }
  return NodePresence::kMissing;
}

/// Presence verdict for a whole pattern: present iff every node is found
/// (exactly or approximately).
struct PatternPresence {
  bool present = false;
  bool all_exact = false;
  std::vector<NodePresence> nodes;
};

PatternPresence ProbePattern(const core::Pattern& pattern,
                             const std::vector<StmtFact>& facts) {
  PatternPresence presence;
  presence.present = true;
  presence.all_exact = true;
  for (const auto& node : pattern.nodes) {
    NodePresence p = ProbeNode(node, facts);
    presence.nodes.push_back(p);
    if (p == NodePresence::kMissing) presence.present = false;
    if (p != NodePresence::kExact) presence.all_exact = false;
  }
  return presence;
}

core::FeedbackComment AstOnlyComment(const core::PatternUse& use,
                                     const PatternPresence& presence,
                                     const std::string& method_name) {
  const core::Pattern& pattern = *use.pattern;
  core::FeedbackComment comment;
  comment.source_id = pattern.id;
  comment.method = method_name;
  bool expected_present = use.expected_count > 0;
  if (!expected_present) {
    // Bad pattern: correct exactly when absent.
    if (presence.present) {
      comment.kind = core::FeedbackKind::kNotExpected;
      comment.message = core::InstantiateFeedback(pattern.feedback_missing, {});
    } else {
      comment.kind = core::FeedbackKind::kCorrect;
      comment.message =
          "Good: '" + pattern.name + "' does not occur in your submission";
    }
    return comment;
  }
  if (!presence.present) {
    comment.kind = core::FeedbackKind::kNotExpected;
    comment.message = core::InstantiateFeedback(pattern.feedback_missing, {});
    return comment;
  }
  comment.kind = presence.all_exact ? core::FeedbackKind::kCorrect
                                    : core::FeedbackKind::kIncorrect;
  comment.message = core::InstantiateFeedback(pattern.feedback_present, {});
  for (size_t u = 0; u < pattern.nodes.size(); ++u) {
    const core::PatternNode& node = pattern.nodes[u];
    const std::string& tmpl = presence.nodes[u] == NodePresence::kExact
                                  ? node.feedback_correct
                                  : node.feedback_incorrect;
    if (!tmpl.empty()) {
      comment.details.push_back(core::InstantiateFeedback(tmpl, {}));
    }
  }
  return comment;
}

/// The AST-only rung of the degradation ladder: per-pattern presence
/// feedback computed from statement contents alone. Constraints are skipped
/// (they are defined over EPDG embeddings).
core::SubmissionFeedback AstOnlyFeedback(const core::AssignmentSpec& spec,
                                         const java::CompilationUnit& unit) {
  core::SubmissionFeedback feedback;
  if (unit.methods.size() < spec.methods.size()) {
    return feedback;  // Does not adhere to the spec; matched stays false.
  }
  feedback.matched = true;
  for (const auto& q : spec.methods) {
    // Prefer the method with the expected name; fall back to the whole
    // unit's statements when the student renamed it.
    std::vector<StmtFact> facts;
    const java::Method* method = unit.FindMethod(q.expected_name);
    if (method != nullptr && method->body != nullptr) {
      CollectFacts(*method->body, &facts);
      feedback.method_assignment[q.expected_name] = method->name;
    } else {
      for (const auto& m : unit.methods) {
        if (m.body != nullptr) CollectFacts(*m.body, &facts);
      }
    }
    for (const auto& use : q.patterns) {
      if (use.pattern == nullptr) continue;
      PatternPresence presence = ProbePattern(*use.pattern, facts);
      // Try variants when the primary realization is missing, mirroring the
      // full matcher's variation handling.
      if (!presence.present && use.expected_count > 0) {
        for (const auto& variant : use.variants) {
          if (variant.pattern == nullptr) continue;
          PatternPresence vp = ProbePattern(*variant.pattern, facts);
          if (vp.present) {
            presence = vp;
            break;
          }
        }
      }
      feedback.comments.push_back(AstOnlyComment(
          use, presence,
          method != nullptr ? method->name : q.expected_name));
    }
  }
  feedback.score = core::FeedbackScore(feedback.comments);
  return feedback;
}

// --- JSON rendering ---------------------------------------------------------

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Parses the reference solution and runs it over the suite inputs; the
/// uncached oracle computation.
Result<std::vector<std::string>> ComputeReferenceOutputs(
    const kb::Assignment& assignment) {
  auto reference = java::Parse(assignment.Reference());
  if (!reference.ok()) {
    return Status(reference.status().code(),
                  "reference solution unavailable: " +
                      reference.status().message());
  }
  return testing::ComputeExpectedOutputs(*reference, assignment.suite);
}

}  // namespace

Result<std::vector<std::string>> ReferenceOracle::ExpectedOutputs(
    const kb::Assignment& assignment) {
  // Bypass the memo while faults are injectable: campaigns must observe
  // every reference parse/execution, and an injected failure must not be
  // served back after the campaign ends.
  if (fault::Injector::Get().enabled()) {
    return ComputeReferenceOutputs(assignment);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (cached_) return expected_;
  auto computed = ComputeReferenceOutputs(assignment);
  if (!computed.ok()) return computed.status();  // Failures recompute.
  expected_ = std::move(computed).value();
  cached_ = true;
  return expected_;
}

std::string OutcomeToJson(const GradingOutcome& outcome) {
  std::string out = "{";
  auto field = [&out](const char* name, bool first = false) {
    if (!first) out += ",";
    AppendJsonString(name, &out);
    out += ":";
  };
  field("verdict", /*first=*/true);
  AppendJsonString(VerdictName(outcome.verdict), &out);
  field("trace_id");
  AppendJsonString(outcome.trace_id, &out);
  field("span_id");
  AppendJsonString(outcome.span_id, &out);
  field("tier");
  AppendJsonString(FeedbackTierName(outcome.tier), &out);
  field("stage_reached");
  AppendJsonString(StageName(outcome.stage_reached), &out);
  field("failure_class");
  AppendJsonString(FailureClassName(outcome.failure), &out);
  field("degraded");
  out += outcome.degraded() ? "true" : "false";
  field("diagnostic");
  AppendJsonString(outcome.diagnostic, &out);
  field("matched");
  out += outcome.feedback.matched ? "true" : "false";
  field("score");
  out += std::to_string(outcome.feedback.score);
  field("match_steps");
  out += std::to_string(outcome.feedback.match_stats.steps);
  field("match_regex_checks");
  out += std::to_string(outcome.feedback.match_stats.regex_checks);
  field("arena_bytes_peak");
  out += std::to_string(outcome.arena_bytes_peak);
  field("methods_reused");
  out += std::to_string(outcome.methods_reused);
  field("methods_regraded");
  out += std::to_string(outcome.methods_regraded);
  field("comments");
  out += "[";
  for (size_t i = 0; i < outcome.feedback.comments.size(); ++i) {
    const auto& c = outcome.feedback.comments[i];
    if (i > 0) out += ",";
    out += "{\"kind\":";
    AppendJsonString(core::FeedbackKindName(c.kind), &out);
    out += ",\"source\":";
    AppendJsonString(c.source_id, &out);
    out += ",\"message\":";
    AppendJsonString(c.message, &out);
    out += "}";
  }
  out += "]";
  field("functional");
  if (outcome.functional_ran) {
    out += "{\"passed\":";
    out += outcome.functional.passed ? "true" : "false";
    out += ",\"tests_run\":" + std::to_string(outcome.functional.tests_run);
    out += ",\"tests_failed\":" +
           std::to_string(outcome.functional.tests_failed);
    out += ",\"first_failure\":";
    AppendJsonString(outcome.functional.first_failure, &out);
    out += "}";
  } else {
    out += "null";
  }
  field("stage_timings");
  // Summed per stage (the match stage can appear twice when the AST-only
  // fallback re-ran it); stages that never started are absent.
  {
    double per_stage[4] = {0.0, 0.0, 0.0, 0.0};
    bool seen[4] = {false, false, false, false};
    for (const auto& t : outcome.timings) {
      size_t index = static_cast<size_t>(t.stage);
      if (index < 4) {
        per_stage[index] += t.wall_ms;
        seen[index] = true;
      }
    }
    out += "{";
    bool first = true;
    for (size_t s = 0; s < 4; ++s) {
      if (!seen[s]) continue;
      if (!first) out += ",";
      first = false;
      AppendJsonString(StageName(static_cast<Stage>(s)), &out);
      out += ":" + std::to_string(per_stage[s]);
    }
    out += "}";
  }
  field("timings_ms");
  out += "[";
  for (size_t i = 0; i < outcome.timings.size(); ++i) {
    const auto& t = outcome.timings[i];
    if (i > 0) out += ",";
    out += "{\"stage\":";
    AppendJsonString(StageName(t.stage), &out);
    out += ",\"ms\":" + std::to_string(t.wall_ms);
    out += ",\"status\":";
    AppendJsonString(t.status.ToString(), &out);
    out += "}";
  }
  out += "]}";
  return out;
}

obs::WideEvent BuildWideEvent(const std::string& submission_id,
                              const std::string& assignment_id,
                              const std::string& cache,
                              const GradingOutcome& outcome) {
  obs::WideEvent event;
  event.unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  event.submission_id = submission_id;
  event.assignment = assignment_id;
  event.verdict = VerdictName(outcome.verdict);
  event.tier = FeedbackTierName(outcome.tier);
  event.failure_class = FailureClassName(outcome.failure);
  event.trace_id = outcome.trace_id;
  event.span_id = outcome.span_id;
  event.cache = cache;
  event.degraded = outcome.degraded();
  event.diagnostic = outcome.diagnostic;
  event.score = outcome.feedback.score;
  event.match_steps =
      static_cast<int64_t>(outcome.feedback.match_stats.steps);
  event.match_regex_checks =
      static_cast<int64_t>(outcome.feedback.match_stats.regex_checks);
  event.arena_bytes_peak = outcome.arena_bytes_peak;
  event.methods_reused = outcome.methods_reused;
  event.methods_regraded = outcome.methods_regraded;
  if (outcome.functional_ran) {
    event.interp_steps = outcome.functional.interp_steps;
    event.interp_heap_bytes = outcome.functional.interp_heap_bytes;
    event.interp_output_bytes = outcome.functional.interp_output_bytes;
    event.functional_tests_run = outcome.functional.tests_run;
    event.functional_tests_failed = outcome.functional.tests_failed;
  }
  // Stage timings summed per stage, mirroring OutcomeToJson's
  // stage_timings object (the match stage can appear twice when the
  // AST-only fallback re-ran it).
  for (const auto& t : outcome.timings) {
    switch (t.stage) {
      case Stage::kParse: event.parse_ms += t.wall_ms; break;
      case Stage::kEpdg: event.epdg_ms += t.wall_ms; break;
      case Stage::kMatch: event.match_ms += t.wall_ms; break;
      case Stage::kFunctional: event.functional_ms += t.wall_ms; break;
      case Stage::kComplete: break;
    }
  }
  return event;
}

const char* ResolveCacheDisposition(const char* base,
                                    const GradingOutcome& outcome) {
  if (outcome.methods_reused > 0 &&
      (std::strcmp(base, "miss") == 0 || std::strcmp(base, "off") == 0)) {
    return "partial_hit";
  }
  return base;
}

void CountCacheDisposition(const char* disposition) {
  // Looked up per call (the label value varies), like the per-assignment
  // instruments in the scheduler; grading cost dwarfs the registry lock.
  obs::Registry::Global()
      .GetCounter("jfeed_cache_requests_total",
                  "Answered submissions by final cache disposition",
                  {{"disposition", disposition}})
      ->Increment();
}

GradingOutcome GradingPipeline::Grade(const std::string& source) const {
  GradingOutcome outcome;

  // Root trace span of this submission; stage spans nest under it (and the
  // layers below — lex, match.index, interp.call — nest under those via the
  // thread-current chain). It also inherits the distributed trace of any
  // enclosing span — the scheduler's sched.job span adopted from the
  // request's traceparent — and stamps the join keys into the outcome.
  obs::Span grade_span("grade");
  if (grade_span.recording()) {
    outcome.trace_id = obs::TraceIdHex(grade_span.context());
    outcome.span_id = obs::SpanIdHex(grade_span.id());
  }

  // Claim the recycled per-submission memory; a concurrent Grade() on the
  // same instance (not how the schedulers use pipelines) gets private
  // per-call memory instead of contending.
  std::unique_lock<std::mutex> memory_lock(memory_mu_, std::try_to_lock);
  pdg::EpdgMemory private_memory;
  Arena private_scratch;
  pdg::EpdgMemory* memory = &private_memory;
  Arena* scratch = &private_scratch;
  if (memory_lock.owns_lock()) {
    epdg_memory_.Reset();
    match_scratch_.Reset();
    memory = &epdg_memory_;
    scratch = &match_scratch_;
  }
  // Every AST node of this grade — the parsed unit, builder-synthesized
  // decl/param expressions, AST-only fallback parses — bump-allocates from
  // the submission arena while this scope is alive. All of those nodes are
  // locals of this call (the scope closes, and they are destroyed, before
  // the arena is reset for the next submission); long-lived ASTs such as
  // pattern templates opt back into the heap at their creation sites.
  java::AstArenaScope ast_scope(&memory->arena);
  // Bytes this submission drew from the arenas; bump allocation only grows
  // within a cycle, so the end-of-grade reading is the cycle peak.
  auto record_arena = [&outcome, memory, scratch] {
    outcome.arena_bytes_peak = static_cast<int64_t>(
        memory->arena.bytes_allocated() + scratch->bytes_allocated());
  };

  // Records one stage's wall time and status; on failure, the first failing
  // stage defines the outcome's failure class and diagnostic. A soft budget
  // overrun is recorded as a timeout failure even when the stage succeeded.
  auto finish_stage = [&outcome](Stage stage, Clock::time_point start,
                                 const Status& status, int64_t budget_ms) {
    StageTiming timing;
    timing.stage = stage;
    timing.wall_ms = MsSince(start);
    timing.status = status;
    StageDurationHistogram(stage)->Record(
        static_cast<int64_t>(timing.wall_ms * 1000.0));
    outcome.timings.push_back(timing);
    if (outcome.failure == FailureClass::kNone) {
      if (!status.ok()) {
        outcome.failure = ClassifyFailure(status);
        outcome.diagnostic = status.ToString();
      } else if (budget_ms > 0 && timing.wall_ms > budget_ms) {
        outcome.failure = FailureClass::kTimeout;
        outcome.diagnostic = std::string(StageName(stage)) +
                             " stage exceeded its " +
                             std::to_string(budget_ms) + "ms budget";
      }
    }
    return status.ok();
  };

  // Stage 1: parse. Failure here is the bottom rung — a parse diagnostic is
  // all the feedback we can give.
  outcome.stage_reached = Stage::kParse;
  auto parse_start = Clock::now();
  obs::Span parse_span("parse", grade_span);
  auto unit = java::Parse(source);
  parse_span.End();
  if (!finish_stage(Stage::kParse, parse_start, unit.status(),
                    options_.budgets.parse_ms)) {
    outcome.tier = FeedbackTier::kParseDiagnostic;
    outcome.verdict = Verdict::kNotGraded;
    record_arena();
    FinishObservation(outcome);
    return outcome;
  }

  // Stage 2: EPDG construction. Failure degrades to AST-only feedback.
  //
  // With a method cache configured this is where incremental grading forks
  // (DESIGN.md §3d): each parsed method is looked up by content
  // fingerprint; a hit pins the cached entry (graph + match cells built by
  // an earlier grade), a miss builds a pinned entry and publishes it. Any
  // lookup fault, hand-built method, or entry-build failure abandons the
  // incremental path for the *whole* submission and regrades cold — never
  // wrong feedback, never a poisoned entry. While a fault campaign is
  // enabled the cache is bypassed in both directions, but lookups still
  // run so campaigns targeting cache.method_lookup observe every crossing.
  outcome.stage_reached = Stage::kEpdg;
  auto epdg_start = Clock::now();
  obs::Span epdg_span("epdg", grade_span);
  bool incremental = false;
  std::vector<std::shared_ptr<MethodEntry>> pinned;
  if (options_.method_cache != nullptr) {
    const bool campaign = fault::Injector::Get().enabled();
    incremental = !campaign;
    pinned.reserve(unit->methods.size());
    for (const auto& method : unit->methods) {
      if (method.norm_source.empty()) {
        incremental = false;
        break;
      }
      auto found =
          options_.method_cache->Lookup(assignment_.id, method.fingerprint);
      if (!found.ok()) {
        incremental = false;
        break;
      }
      if (campaign) continue;  // Point crossed; reuse and insert bypassed.
      std::shared_ptr<MethodEntry> entry = std::move(*found);
      if (entry == nullptr) {
        auto built = MethodCache::BuildEntry(method);
        if (!built.ok()) {
          incremental = false;
          break;
        }
        entry = options_.method_cache->Insert(
            assignment_.id, method.fingerprint, std::move(*built));
        ++outcome.methods_regraded;
      } else {
        ++outcome.methods_reused;
      }
      pinned.push_back(std::move(entry));
    }
    if (!incremental) {
      outcome.methods_reused = 0;
      outcome.methods_regraded = static_cast<int>(unit->methods.size());
      pinned.clear();
    }
  }
  Status epdg_status;
  if (!incremental) {
    // Cold path: build (and discard) the graphs to surface EPDG failures
    // here; a successful MatchSubmission below rebuilds them in the same
    // recycled arena.
    epdg_status = pdg::BuildAllEpdgs(*unit, memory).status();
  }
  epdg_span.End();
  bool epdg_ok = finish_stage(Stage::kEpdg, epdg_start, epdg_status,
                              options_.budgets.epdg_ms);

  // Stage 3: pattern matching — full EPDG matching when the graphs exist,
  // the AST-only fallback otherwise (or when the matcher itself fails).
  outcome.stage_reached = Stage::kMatch;
  auto match_start = Clock::now();
  obs::Span match_span("match", grade_span);
  bool matched_full = false;
  if (epdg_ok) {
    core::SubmissionMatchOptions match_options = options_.match;
    match_options.epdg_memory = memory;
    match_options.match.scratch_arena = scratch;
    auto run_match = [&]() -> Result<core::SubmissionFeedback> {
      if (incremental) {
        // Only the cross-method combination step (Algorithm 2) runs over
        // the pinned graphs; per-method cells come from their stores.
        std::vector<core::MethodGraphRef> refs;
        refs.reserve(pinned.size());
        for (const auto& entry : pinned) {
          refs.push_back({entry->graph.get(), &entry->cells});
        }
        return core::MatchSubmissionGraphs(assignment_.spec, refs,
                                           match_options);
      }
      return core::MatchSubmission(assignment_.spec, *unit, match_options);
    };
    auto feedback = run_match();
    if (feedback.ok()) {
      outcome.feedback = std::move(feedback).value();
      outcome.tier = FeedbackTier::kFullEpdg;
      matched_full = true;
      finish_stage(Stage::kMatch, match_start, Status::OK(),
                   options_.budgets.match_ms);
    } else {
      finish_stage(Stage::kMatch, match_start, feedback.status(),
                   options_.budgets.match_ms);
    }
  }
  if (!matched_full) {
    // The AST-only rung gets its own span so a trace shows which part of
    // the match stage was fallback work.
    obs::Span ast_only_span("match.ast_only", match_span);
    outcome.feedback = AstOnlyFeedback(assignment_.spec, *unit);
    outcome.tier = FeedbackTier::kAstOnly;
    ast_only_span.End();
    if (!epdg_ok) {
      // The match stage still ran (via the fallback); record its timing.
      finish_stage(Stage::kMatch, match_start, Status::OK(),
                   options_.budgets.match_ms);
    }
  }
  match_span.End();

  // Stage 4: functional testing. Needs only the parsed unit, so it runs on
  // both feedback tiers; its own failures (reference broken, injected
  // interpreter fault) degrade to pattern-only verdicts.
  if (options_.run_functional && outcome.feedback.matched) {
    outcome.stage_reached = Stage::kFunctional;
    auto func_start = Clock::now();
    obs::Span functional_span("functional", grade_span);
    Status func_status;
    obs::Span oracle_span("oracle", functional_span);
    auto expected = oracle_->ExpectedOutputs(assignment_);
    oracle_span.End();
    if (!expected.ok()) {
      func_status = expected.status();
    } else {
      interp::ExecOptions exec = assignment_.suite.exec_options;
      exec.max_heap_bytes = options_.exec.max_heap_bytes;
      exec.max_output_bytes = options_.exec.max_output_bytes;
      exec.deadline_ms = options_.exec.deadline_ms;
      outcome.functional = testing::RunSuiteGuarded(
          *unit, assignment_.suite, *expected, exec,
          options_.budgets.functional_ms);
      outcome.functional_ran = true;
    }
    functional_span.End();
    finish_stage(Stage::kFunctional, func_start, func_status,
                 options_.budgets.functional_ms);
  }
  outcome.stage_reached = Stage::kComplete;

  // Final verdict.
  if (!outcome.feedback.matched) {
    outcome.verdict = Verdict::kSpecMismatch;
  } else if (outcome.feedback.AllCorrect() &&
             (!outcome.functional_ran || outcome.functional.passed)) {
    outcome.verdict = Verdict::kCorrect;
  } else {
    outcome.verdict = Verdict::kIncorrect;
  }
  record_arena();
  FinishObservation(outcome);
  return outcome;
}

std::vector<GradingOutcome> GradingPipeline::GradeBatch(
    const std::vector<std::string>& sources) const {
  std::vector<GradingOutcome> outcomes;
  outcomes.reserve(sources.size());
  for (const auto& source : sources) {
    // Each submission gets fresh budgets and fresh interpreter state; the
    // pipeline is stateless, so an adversarial submission can burn only its
    // own budgets, never the batch's.
    outcomes.push_back(Grade(source));
  }
  return outcomes;
}

}  // namespace jfeed::service
