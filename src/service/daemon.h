#ifndef JFEED_SERVICE_DAEMON_H_
#define JFEED_SERVICE_DAEMON_H_

// The jfeedd grading daemon: a long-running serving wrapper around
// sched::ShardedScheduler + service::GradingPipeline that hosts the live
// introspection surface. One instance serves one or many knowledge-base
// assignments (multi-tenant) on loopback:
//
//   POST /grade     NDJSON submissions in (grade --batch line format; each
//                   line may carry an "assignment" routing key),
//                   NDJSON GradingOutcomes out, input order preserved.
//                   Per-line failure modes stay per-line: an unknown
//                   assignment id answers a code:404 error object, an
//                   admission shed (that assignment's shard is at quota) a
//                   code:429 object with retry_after_s. Only when *every*
//                   line was shed does the response itself become HTTP 429
//                   with a Retry-After header — the backpressure signal an
//                   open-loop client (jfeed-loadgen) keys on.
//   GET  /metrics   Prometheus text exposition (Registry::Render)
//   GET  /healthz   readiness: 200 while serving, 503 while draining,
//                   saturated (queue full) or degraded (recent grades
//                   dominated by internal faults) — see DESIGN.md §6b
//   GET  /statusz   build info, uptime, scheduler utilization, cache hit
//                   rate, one JSON object
//   GET  /tracez    recent spans from the tracer rings as JSON; add
//                   ?format=chrome[&pid=N] for a Chrome/Perfetto trace
//   GET  /events    the per-submission flight recorder ring as NDJSON
//                   (?assignment= and ?trace_id= filters)
//   GET  /sloz      per-assignment SLO budgets + burn rates as JSON
//
// Lifecycle: Start() enables the observability layer (registry, tracer,
// event log), spins up the scheduler and the HTTP server; BeginDrain()
// flips /healthz to 503 and rejects new grade work while scrapes keep
// working — the window a load balancer needs to stop routing; Stop()
// closes the server, drains in-flight grading and joins everything. The
// tools/jfeedd.cc main wires SIGINT/SIGTERM to BeginDrain+Stop.
//
// Under JFEED_OBS=OFF the introspection surface does not exist, so Start()
// refuses with a clear error instead of serving blind (the daemon's whole
// point is live visibility).

#include <cstdint>
#include <memory>
#include <string>

#include <vector>

#include "obs/event_log.h"
#include "obs/http_server.h"
#include "obs/slo.h"
#include "sched/sharded_scheduler.h"
#include "service/pipeline.h"
#include "support/status.h"

#ifndef JFEED_OBS_DISABLED
#include <atomic>
#include <chrono>
#endif

namespace jfeed::service {

/// Version string served in /statusz build info.
extern const char kJfeedVersion[];

struct DaemonOptions {
  /// Single-tenant form: serve exactly this assignment (lines that omit
  /// "assignment" route here). Mutually exclusive with `assignments`.
  std::string assignment_id;
  /// Multi-tenant form: serve these assignments, one scheduler shard each.
  /// When both this and assignment_id are empty, every assignment in the
  /// knowledge base is loaded (the MOOC deployment shape: one process, all
  /// twelve assignments).
  std::vector<std::string> assignments;
  /// Loopback port; 0 picks an ephemeral one (read back via port()).
  uint16_t port = 0;
  /// Worker threads shared across every assignment shard.
  int jobs = 4;
  /// Single-tenant admission quota (kept for back-compat with --queue).
  size_t queue_capacity = 256;
  /// Per-assignment admission quota in multi-tenant mode: submissions of
  /// one assignment in the system (queued or grading) before further ones
  /// are shed with 429. 0 = queue_capacity when single-tenant, 64 others.
  size_t shard_queue_capacity = 0;
  /// Retry-After header value (seconds) on fully-shed (HTTP 429) responses
  /// and the retry_after_s hint on per-line sheds.
  int retry_after_s = 1;
  bool use_result_cache = true;
  /// Method-level incremental grading (DESIGN.md §3d): resubmissions reuse
  /// the unedited methods' graphs and match cells across requests.
  bool use_method_cache = false;
  /// Flight-recorder ring capacity.
  size_t event_capacity = obs::EventLog::kDefaultCapacity;
  /// Tracer ring capacity per thread (0 = leave the tracer disabled).
  size_t trace_ring_capacity = 1u << 12;
  /// Per-submission pipeline tuning (budgets, match engine).
  PipelineOptions pipeline;
  /// HTTP connection workers.
  int http_workers = 4;
  /// /healthz degradation window: the daemon reports "degraded" when more
  /// than half of the last `health_window` graded submissions failed with
  /// class internal_fault (infrastructure trouble, not student error).
  /// Needs at least health_window/2 recorded events to trip.
  size_t health_window = 32;
  /// Fleet worker id when this daemon runs as a supervised jfeed-broker
  /// worker (--worker-id); -1 when standalone. Surfaced in /statusz so an
  /// operator can tell workers apart behind the broker.
  int worker_id = -1;
  /// Per-assignment SLO objectives (latency threshold, availability target,
  /// burn windows) — /sloz and the jfeed_slo_* metrics report against
  /// these. Defaults are generous enough that an untuned daemon never
  /// trips; tighten via the jfeedd --slo-* flags.
  obs::SloPolicy slo;
  /// When set, a fast-burning tenant degrades /healthz ("slo_fast_burn",
  /// 503) so the load balancer steers away before the admission quota has
  /// to shed.
  bool slo_health = true;
};

#ifdef JFEED_OBS_DISABLED

class GradingDaemon {
 public:
  explicit GradingDaemon(DaemonOptions options) : options_(std::move(options)) {}
  Status Start() {
    return Status::Internal(
        "jfeedd was built with JFEED_OBS=OFF: the introspection endpoints "
        "(/metrics, /healthz, /statusz, /tracez, /events) are compiled out "
        "and a grading daemon without live monitoring is not serviceable; "
        "rebuild with -DJFEED_OBS=ON");
  }
  void BeginDrain() {}
  void Stop() {}
  uint16_t port() const { return 0; }
  bool serving() const { return false; }
  bool draining() const { return false; }

 private:
  DaemonOptions options_;
};

#else  // JFEED_OBS_DISABLED

class GradingDaemon {
 public:
  explicit GradingDaemon(DaemonOptions options);
  ~GradingDaemon();

  GradingDaemon(const GradingDaemon&) = delete;
  GradingDaemon& operator=(const GradingDaemon&) = delete;

  /// Resolves the assignment, enables the observability layer, starts the
  /// scheduler and the HTTP server. Fails on an unknown assignment id or
  /// an unbindable port.
  Status Start();

  /// Stops accepting grade work: POST /grade answers 503 and /healthz
  /// reports "draining" — introspection endpoints keep serving so the
  /// drain itself is observable. Idempotent.
  void BeginDrain();

  /// BeginDrain + closes the HTTP server (finishing in-flight requests)
  /// and drains the scheduler. Idempotent; also run by the destructor.
  void Stop();

  /// Bound port once Start() succeeded.
  uint16_t port() const { return server_ != nullptr ? server_->port() : 0; }
  bool serving() const { return server_ != nullptr && server_->serving(); }
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

 private:
  obs::HttpResponse HandleGrade(const obs::HttpRequest& request);
  obs::HttpResponse HandleMetrics(const obs::HttpRequest& request);
  obs::HttpResponse HandleHealthz(const obs::HttpRequest& request);
  obs::HttpResponse HandleStatusz(const obs::HttpRequest& request);
  obs::HttpResponse HandleTracez(const obs::HttpRequest& request);
  obs::HttpResponse HandleEvents(const obs::HttpRequest& request);
  obs::HttpResponse HandleSloz(const obs::HttpRequest& request);

  DaemonOptions options_;
  /// Assignment ids actually served, in shard order (resolved in Start()).
  std::vector<std::string> assignment_ids_;
  /// The id unrouted lines default to (single-tenant mode), "" when every
  /// line must carry its own "assignment" key.
  std::string default_assignment_;
  std::unique_ptr<sched::ShardedScheduler> scheduler_;
  std::unique_ptr<obs::HttpServer> server_;
  std::atomic<bool> draining_{false};
  std::chrono::steady_clock::time_point started_;
  int64_t start_unix_ms_ = 0;
};

#endif  // JFEED_OBS_DISABLED

}  // namespace jfeed::service

#endif  // JFEED_SERVICE_DAEMON_H_
