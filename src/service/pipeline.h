#ifndef JFEED_SERVICE_PIPELINE_H_
#define JFEED_SERVICE_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/submission_matcher.h"
#include "interp/interpreter.h"
#include "kb/assignments.h"
#include "obs/event_log.h"
#include "pdg/epdg.h"
#include "service/method_cache.h"
#include "support/arena.h"
#include "support/result.h"
#include "support/status.h"
#include "testing/functional.h"

namespace jfeed::service {

/// The stages a submission passes through, in order. `stage_reached` in a
/// GradingOutcome is the deepest stage that *started*; kComplete means the
/// whole chain ran.
enum class Stage { kParse, kEpdg, kMatch, kFunctional, kComplete };

/// Failure taxonomy of the grading service. Exactly one class is recorded
/// per outcome — the first failure that forced a degradation — so service
/// dashboards can separate student-caused failures (parse errors, budget
/// blowups) from infrastructure faults.
enum class FailureClass {
  kNone,               ///< Healthy run, no degradation.
  kParseError,         ///< Submission not in the accepted Java subset.
  kTimeout,            ///< A time budget expired (steps, wall-clock).
  kResourceExhausted,  ///< A space budget expired (heap, output, depth).
  kInternalFault,      ///< Infrastructure error (incl. injected faults).
};

/// How much of the feedback machinery was available for this outcome — the
/// graceful-degradation ladder. Full EPDG feedback when everything works;
/// AST-pattern-only feedback when EPDG construction or graph matching
/// fails (patterns are checked per-node against statement text/ASTs, no
/// structural edges, no constraints); a parse diagnostic when even parsing
/// fails. Every submission lands on some rung — the pipeline never returns
/// "crashed".
enum class FeedbackTier { kFullEpdg, kAstOnly, kParseDiagnostic };

/// Final verdict of one graded submission.
enum class Verdict {
  kCorrect,       ///< Graded; all feedback correct, functional tests pass.
  kIncorrect,     ///< Graded; some pattern/constraint/test failed.
  kSpecMismatch,  ///< Parsed, but does not provide the expected method(s).
  kNotGraded,     ///< Degraded to a parse diagnostic; no grading possible.
};

const char* StageName(Stage stage);
const char* FailureClassName(FailureClass failure);
const char* FeedbackTierName(FeedbackTier tier);
const char* VerdictName(Verdict verdict);

/// Maps a Status to the failure taxonomy (used for stage failures).
FailureClass ClassifyFailure(const Status& status);

/// Wall-clock budgets per stage, in milliseconds. The functional stage is
/// enforced pre-emptively (the interpreter checks its deadline while
/// running); parse/EPDG/match budgets are soft deadlines checked when the
/// stage returns — those stages are bounded by construction (linear scans
/// and capped backtracking), so a soft check is enough to classify and
/// report overruns.
struct StageBudgets {
  int64_t parse_ms = 2'000;
  int64_t epdg_ms = 2'000;
  int64_t match_ms = 5'000;
  int64_t functional_ms = 10'000;
};

/// Tuning for one pipeline instance.
struct PipelineOptions {
  StageBudgets budgets;
  /// Resource guards for each functional-test execution. The deadline is
  /// applied per test input; the suite as a whole is additionally bounded
  /// by budgets.functional_ms (checked between tests).
  interp::ExecOptions exec;
  /// Algorithm 1/2 tuning for the match stage.
  core::SubmissionMatchOptions match;
  /// Run the functional suite after pattern matching.
  bool run_functional = true;
  /// Incremental resubmission grading (DESIGN.md §3d): when set, the EPDG
  /// and match stages reuse pinned per-method entries keyed by content
  /// fingerprint, re-running only edited methods plus the cross-method
  /// combination step. Null (the default) grades cold. Share one instance
  /// across the pipelines of a scheduler to amortize across workers.
  std::shared_ptr<MethodCache> method_cache;

  PipelineOptions() {
    // Service defaults are deliberately tighter than the library defaults:
    // an untrusted submission gets 64 MiB of heap, 1 MiB of output and one
    // second of wall-clock per test.
    exec.max_heap_bytes = 64ll << 20;
    exec.max_output_bytes = 1ll << 20;
    exec.deadline_ms = 1'000;
  }
};

/// Wall-clock time and final status of one pipeline stage.
struct StageTiming {
  Stage stage = Stage::kParse;
  double wall_ms = 0.0;
  Status status;
};

/// The structured result of grading one submission. This is the service's
/// contract: *every* submission — adversarial, malformed, or hitting an
/// injected infrastructure fault — yields exactly one GradingOutcome; the
/// pipeline has no crash path.
struct GradingOutcome {
  Verdict verdict = Verdict::kNotGraded;
  FeedbackTier tier = FeedbackTier::kParseDiagnostic;
  Stage stage_reached = Stage::kParse;
  FailureClass failure = FailureClass::kNone;
  /// Human-readable rendering of the status that forced the degradation
  /// (empty for healthy runs).
  std::string diagnostic;
  /// Pattern/constraint feedback; meaningful unless tier is
  /// kParseDiagnostic. In the kAstOnly tier constraints are skipped (they
  /// need the EPDG) and comments carry per-node presence checks only.
  core::SubmissionFeedback feedback;
  /// Functional verdict; meaningful only when functional_ran.
  testing::FunctionalVerdict functional;
  bool functional_ran = false;
  std::vector<StageTiming> timings;
  /// Bytes bump-allocated from the per-submission arenas (EPDG memory +
  /// matcher scratch) while grading this submission. Zero when grading
  /// degraded before the EPDG stage.
  int64_t arena_bytes_peak = 0;
  /// Incremental-grading accounting: methods served from the method cache
  /// vs. methods that had to be (re)graded. Both zero when no method cache
  /// was configured; reused == 0 with regraded == method count when the
  /// cache was configured but this grade ran cold (first sight, lookup
  /// fault fallback, or campaign bypass).
  int methods_reused = 0;
  int methods_regraded = 0;
  /// Distributed-trace join keys, stamped by Grade() from the span that
  /// did the work (32-hex trace id, 16-hex span id; trace_context.h).
  /// Empty when tracing is off. A cached outcome is re-stamped by the
  /// scheduler with the trace of the request being answered, not the one
  /// that originally graded.
  std::string trace_id;
  std::string span_id;

  /// True when any rung below full EPDG feedback was taken or any budget
  /// fired.
  bool degraded() const {
    return tier != FeedbackTier::kFullEpdg || failure != FailureClass::kNone;
  }
};

/// Renders an outcome as a single JSON object (machine-readable form used
/// by `grade --json` and batch tooling).
std::string OutcomeToJson(const GradingOutcome& outcome);

/// Flattens one outcome into the flight recorder's wide-event schema
/// (DESIGN.md §6b): verdict, rung, failure class, matcher work counters,
/// interpreter resource spend, per-stage wall times, all stamped with the
/// wall-clock completion time. `cache` is the cache disposition as seen by
/// the caller ("hit", "dedup", "miss", "off", or "partial_hit" — see
/// ResolveCacheDisposition below). The caller appends the result to
/// obs::EventLog::Global() (or a file sink).
obs::WideEvent BuildWideEvent(const std::string& submission_id,
                              const std::string& assignment_id,
                              const std::string& cache,
                              const GradingOutcome& outcome);

/// Pure mapping that folds method-cache reuse into a submission's cache
/// disposition: a "miss"/"off" grade that reused at least one method
/// becomes "partial_hit"; "hit" and "dedup" pass through (the whole
/// outcome was served, method accounting is moot).
const char* ResolveCacheDisposition(const char* base,
                                    const GradingOutcome& outcome);

/// Bumps jfeed_cache_requests_total{disposition=...} (DESIGN.md §6
/// contract). Call exactly once per answered submission with its final
/// (resolved) disposition — the schedulers do this at the site that pays
/// for the grade or serves the cached copy, never at dedup-follower
/// fan-out.
void CountCacheDisposition(const char* disposition);

/// Thread-safe memo of a reference solution's expected outputs for one
/// assignment. The functional oracle is self-consistent (expected outputs
/// come from running the reference over the suite inputs), so without a
/// memo the reference runs once per *submission*; with one it runs once per
/// (assignment, test input). One oracle is private to each pipeline by
/// default; the batch scheduler shares a single oracle across its worker
/// pipelines so a whole parallel batch pays the reference cost once.
///
/// While a fault-injection campaign is enabled the memo is bypassed in both
/// directions — nothing is served from it and nothing is stored — so chaos
/// campaigns see every reference execution and an injected reference
/// failure can never poison later healthy grades.
class ReferenceOracle {
 public:
  /// Expected stdout per suite input, parsed+computed on first use.
  /// Failures (unparseable reference, reference crash on a suite input) are
  /// NOT memoized; they are recomputed — and so re-observed — per call.
  Result<std::vector<std::string>> ExpectedOutputs(
      const kb::Assignment& assignment);

 private:
  std::mutex mu_;
  bool cached_ = false;
  std::vector<std::string> expected_;
};

/// The hardened grading service: wraps parse → EPDG → pattern match →
/// functional testing with per-stage budgets and the degradation ladder
/// described on FeedbackTier. Stateless across submissions: grading N
/// submissions from one pipeline instance is equivalent to grading each
/// from its own, which is what isolates a batch from an adversarial member.
/// (The one piece of retained state is the recycled per-submission memory
/// pool below — raw arena capacity, reset before every use, never grading
/// state.)
class GradingPipeline {
 public:
  /// `oracle` memoizes the reference solution's expected outputs; pass a
  /// shared instance to amortize the reference run across pipelines (the
  /// batch scheduler does), or leave it null for a private one.
  explicit GradingPipeline(const kb::Assignment& assignment,
                           PipelineOptions options = PipelineOptions(),
                           std::shared_ptr<ReferenceOracle> oracle = nullptr)
      : assignment_(assignment),
        options_(std::move(options)),
        oracle_(oracle != nullptr ? std::move(oracle)
                                  : std::make_shared<ReferenceOracle>()) {}

  GradingPipeline(const GradingPipeline&) = delete;
  GradingPipeline& operator=(const GradingPipeline&) = delete;

  const PipelineOptions& options() const { return options_; }

  /// Grades one submission. Total, never fails: all errors are folded into
  /// the returned outcome.
  GradingOutcome Grade(const std::string& source) const;

  /// Grades a batch. Each submission is graded with fresh budgets and
  /// fresh state; element i of the result corresponds to source i.
  std::vector<GradingOutcome> GradeBatch(
      const std::vector<std::string>& sources) const;

 private:
  const kb::Assignment& assignment_;
  PipelineOptions options_;
  std::shared_ptr<ReferenceOracle> oracle_;
  /// Recycled per-submission memory (DESIGN.md §3c): the EPDG arena +
  /// symbol table and the matcher's scratch arena. After the first few
  /// submissions the chunks reach steady state and a whole grade runs with
  /// near-zero allocator calls. A pipeline normally belongs to one worker
  /// thread; if concurrent Grade() calls do race into one instance, the
  /// try-lock loser falls back to private per-call memory, so reuse is an
  /// optimization and never a correctness dependency.
  mutable std::mutex memory_mu_;
  mutable pdg::EpdgMemory epdg_memory_;
  mutable Arena match_scratch_;
};

}  // namespace jfeed::service

#endif  // JFEED_SERVICE_PIPELINE_H_
