#ifndef JFEED_SERVICE_METHOD_CACHE_H_
#define JFEED_SERVICE_METHOD_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/submission_matcher.h"
#include "javalang/ast.h"
#include "pdg/epdg.h"
#include "support/result.h"

namespace jfeed::service {

/// One pinned method shared across resubmissions: its own EpdgMemory (NOT
/// the recycled worker arena — DESIGN.md §3c pools are reset between
/// submissions, which would invalidate a cached graph), the re-parsed AST
/// the graph borrows statement expressions from, the frozen EPDG itself,
/// and the per-expected-method match cells computed so far.
///
/// Member order is the destruction contract: `memory` is declared first so
/// it is destroyed LAST — the unit's AST nodes and the graph's arrays live
/// in its arena, and their destructors (which free heap string payloads)
/// must run before the arena reclaims the node bytes.
struct MethodEntry {
  pdg::EpdgMemory memory;
  java::CompilationUnit unit;  ///< Exactly one method, arena-allocated AST.
  std::unique_ptr<pdg::Epdg> graph;  ///< Frozen at build; read-only after.
  core::MethodCellStore cells;
};

/// Cumulative counters of one MethodCache.
struct MethodCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Lookups that returned an error (injected fault at cache.method_lookup)
  /// and sent the submission down the full-regrade path.
  uint64_t fallbacks = 0;

  double HitRate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// Content-addressed cache of graded methods: key = (assignment id, method
/// token fingerprint), value = a pinned MethodEntry. On a resubmission that
/// edits one method, every other method's EPDG build and match cells are
/// served from here and only the edited method plus the cross-method
/// combination step re-run — the `partial_hit` disposition.
///
/// Keying by assignment id is what isolates tenants: two assignments whose
/// submissions share a method body (same fingerprint) still get distinct
/// entries, because a cell is only meaningful against its own spec.
///
/// Thread-safe; bounded with the same CLOCK-style second-chance eviction as
/// ResultCache. Entries are handed out as shared_ptr, so an evicted entry
/// stays alive until the last grade using it finishes.
class MethodCache {
 public:
  explicit MethodCache(size_t max_entries = 8192)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  MethodCache(const MethodCache&) = delete;
  MethodCache& operator=(const MethodCache&) = delete;

  /// Ok(entry) on a hit, Ok(nullptr) on a miss. An error means the
  /// deterministic fault injector fired at `cache.method_lookup`; the
  /// caller must abandon incremental grading for the whole submission and
  /// fall back to a cold regrade (never wrong feedback, never a poisoned
  /// entry).
  Result<std::shared_ptr<MethodEntry>> Lookup(const std::string& assignment_id,
                                              uint64_t fingerprint);

  /// Publishes an entry, evicting a cold one when full. Returns the entry
  /// now cached under the key: on an insert race the first writer wins and
  /// the loser's entry is discarded, so concurrent workers converge on one
  /// cell store.
  std::shared_ptr<MethodEntry> Insert(const std::string& assignment_id,
                                      uint64_t fingerprint,
                                      std::shared_ptr<MethodEntry> entry);

  /// Builds a pinned entry for `method`: re-parses its normalized source
  /// into the entry's own arena, builds the EPDG there, and freezes its
  /// adjacency so concurrent readers never mutate. Fails (and caches
  /// nothing) for hand-built methods without a normalized source or when a
  /// fault campaign trips the parser/builder points inside.
  static Result<std::shared_ptr<MethodEntry>> BuildEntry(
      const java::Method& method);

  MethodCacheStats stats() const;
  size_t size() const;
  size_t max_entries() const { return max_entries_; }

 private:
  struct Slot {
    std::shared_ptr<MethodEntry> entry;
    bool referenced = false;  ///< Second-chance bit, set on every hit.
  };

  static std::string MakeKey(const std::string& assignment_id,
                             uint64_t fingerprint);

  void EvictOneLocked();

  const size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> entries_;
  std::vector<std::string> clock_;  ///< Keys in eviction-scan order.
  size_t hand_ = 0;
  MethodCacheStats stats_;
};

}  // namespace jfeed::service

#endif  // JFEED_SERVICE_METHOD_CACHE_H_
