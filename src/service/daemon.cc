#include "service/daemon.h"

namespace jfeed::service {

const char kJfeedVersion[] = "0.6.0";

}  // namespace jfeed::service

#ifndef JFEED_OBS_DISABLED

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "kb/assignments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/batch_io.h"

namespace jfeed::service {

namespace {

/// Parses "limit=N" out of a query string; `fallback` when absent/garbage.
size_t ParseLimit(const std::string& query, size_t fallback) {
  size_t pos = query.find("limit=");
  if (pos != 0 && (pos == std::string::npos || query[pos - 1] != '&')) {
    return fallback;
  }
  char* end = nullptr;
  unsigned long long v = std::strtoull(query.c_str() + pos + 6, &end, 10);
  if (end == query.c_str() + pos + 6) return fallback;
  return static_cast<size_t>(v);
}

/// Extracts the value of `key=` from a query string; "" when absent. Values
/// are used verbatim (assignment ids are identifier-like, no %-escapes).
std::string ParseQueryValue(const std::string& query, const std::string& key) {
  std::string needle = key + "=";
  size_t pos = query.find(needle);
  if (pos != 0 && (pos == std::string::npos || query[pos - 1] != '&')) {
    return "";
  }
  size_t start = pos + needle.size();
  size_t end = query.find('&', start);
  if (end == std::string::npos) end = query.size();
  return query.substr(start, end - start);
}

obs::HttpResponse JsonResponse(int status, std::string body) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = "application/json; charset=utf-8";
  response.body = std::move(body);
  if (!response.body.empty() && response.body.back() != '\n') {
    response.body += "\n";
  }
  return response;
}

/// Reads one of the scheduler's contract counters back out of the registry
/// (Get* is idempotent: same name + labels → same instrument).
int64_t CounterValue(const char* name) {
  return obs::Registry::Global().GetCounter(name, "")->Value();
}

/// Per-assignment variant: the `assignment`-labeled families the
/// ShardedScheduler maintains (DESIGN.md §6).
int64_t ShardCounterValue(const char* name, const std::string& assignment) {
  return obs::Registry::Global()
      .GetCounter(name, "", {{"assignment", assignment}})
      ->Value();
}

}  // namespace

GradingDaemon::GradingDaemon(DaemonOptions options)
    : options_(std::move(options)) {}

GradingDaemon::~GradingDaemon() { Stop(); }

Status GradingDaemon::Start() {
  if (server_ != nullptr) return Status::Internal("daemon already started");
  if (!options_.assignment_id.empty() && !options_.assignments.empty()) {
    return Status::InvalidArgument(
        "set assignment_id (single-tenant) or assignments (multi-tenant), "
        "not both");
  }

  const auto& kb = kb::KnowledgeBase::Get();
  std::vector<std::string> requested;
  if (!options_.assignment_id.empty()) {
    requested.push_back(options_.assignment_id);
  } else if (!options_.assignments.empty()) {
    requested = options_.assignments;
  } else {
    // The MOOC deployment shape: one process serves every assignment.
    requested = kb.assignment_ids();
  }

  std::vector<const kb::Assignment*> assignments;
  assignments.reserve(requested.size());
  for (const auto& id : requested) {
    bool known = false;
    for (const auto& kb_id : kb.assignment_ids()) known |= kb_id == id;
    if (!known) {
      return Status::NotFound("unknown assignment '" + id +
                              "' (try grade --list)");
    }
    for (const kb::Assignment* seen : assignments) {
      if (seen->id == id) {
        return Status::InvalidArgument("assignment '" + id +
                                       "' listed twice");
      }
    }
    assignments.push_back(&kb.assignment(id));
  }
  assignment_ids_ = std::move(requested);
  // Lines without an "assignment" key only have an unambiguous route when
  // the daemon serves exactly one assignment.
  default_assignment_ =
      assignment_ids_.size() == 1 ? assignment_ids_.front() : "";

  // The daemon is a monitoring surface by definition: all three
  // observability sinks come up with it.
  obs::Registry::Global().set_enabled(true);
  if (options_.trace_ring_capacity > 0) {
    obs::Tracer::Global().Enable(options_.trace_ring_capacity);
  }
  obs::EventLog::Global().SetCapacity(options_.event_capacity);
  obs::EventLog::Global().set_enabled(true);
  // Arms per-assignment error-budget accounting; the scheduler feeds it
  // from the same admitted→published interval jfeed_grade_duration_us
  // records. Configure drops prior state, so a restarted daemon (or the
  // next test in a process) starts with full budgets.
  obs::SloTracker::Global().Configure(options_.slo);

  sched::ShardedSchedulerOptions scheduler_options;
  scheduler_options.jobs = options_.jobs;
  // The admission quota: an explicit shard_queue_capacity wins; otherwise a
  // single-tenant daemon keeps the historical --queue semantics and a
  // multi-tenant one gets a per-assignment default small enough that one
  // spiking assignment cannot monopolize the worker pool.
  scheduler_options.shard_queue_capacity =
      options_.shard_queue_capacity > 0 ? options_.shard_queue_capacity
      : assignment_ids_.size() == 1     ? options_.queue_capacity
                                        : 64;
  scheduler_options.use_result_cache = options_.use_result_cache;
  scheduler_options.use_method_cache = options_.use_method_cache;
  scheduler_ = std::make_unique<sched::ShardedScheduler>(
      std::move(assignments), options_.pipeline, scheduler_options);

  obs::HttpServer::Options server_options;
  server_options.port = options_.port;
  server_options.workers = options_.http_workers;
  server_ = std::make_unique<obs::HttpServer>(server_options);
  server_->Handle("/grade",
                  [this](const obs::HttpRequest& r) { return HandleGrade(r); });
  server_->Handle("/metrics", [this](const obs::HttpRequest& r) {
    return HandleMetrics(r);
  });
  server_->Handle("/healthz", [this](const obs::HttpRequest& r) {
    return HandleHealthz(r);
  });
  server_->Handle("/statusz", [this](const obs::HttpRequest& r) {
    return HandleStatusz(r);
  });
  server_->Handle("/tracez", [this](const obs::HttpRequest& r) {
    return HandleTracez(r);
  });
  server_->Handle("/events", [this](const obs::HttpRequest& r) {
    return HandleEvents(r);
  });
  server_->Handle("/sloz", [this](const obs::HttpRequest& r) {
    return HandleSloz(r);
  });

  Status status = server_->Start();
  if (!status.ok()) {
    server_.reset();
    scheduler_.reset();
    return status;
  }
  started_ = std::chrono::steady_clock::now();
  start_unix_ms_ = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  draining_.store(false, std::memory_order_relaxed);
  return Status::OK();
}

void GradingDaemon::BeginDrain() {
  draining_.store(true, std::memory_order_relaxed);
}

void GradingDaemon::Stop() {
  BeginDrain();
  if (server_ != nullptr) {
    server_->Stop();  // Finishes in-flight requests, joins HTTP threads.
  }
  scheduler_.reset();  // Drains admitted grading work, joins workers.
  server_.reset();
}

obs::HttpResponse GradingDaemon::HandleGrade(const obs::HttpRequest& request) {
  if (request.method != "POST") {
    obs::HttpResponse response;
    response.status = 405;
    response.body = "POST NDJSON submissions to /grade\n";
    return response;
  }
  if (draining()) {
    return JsonResponse(503, "{\"error\":\"daemon is draining\"}");
  }
  if (request.body.empty()) {
    return JsonResponse(
        400,
        "{\"error\":\"empty body; send one NDJSON submission per line\"}");
  }

  // Adopt the caller's distributed-trace context (or mint a fresh root for
  // a direct hit) and open the request span every line's sched.job span
  // parents under. One context per request: a multi-line body is one
  // client action, so its lines share the trace and fan out as siblings.
  obs::TraceContext ctx =
      obs::ContextFromHeader(obs::RequestHeader(request, "traceparent"));
  obs::Span request_span("daemon.grade", ctx);
  const obs::TraceContext trace =
      request_span.recording() ? request_span.context() : ctx;

  // Same line format and error taxonomy as `grade --batch`, extended with
  // per-line routing: bad lines get an error object at their position, the
  // rest of the body still grades. A line's "assignment" key routes it to
  // that shard; lines without one fall back to the daemon's default (the
  // single-tenant assignment), and are refused per-line when the daemon
  // serves several assignments and there is no unambiguous default.
  std::vector<sched::MixedItem> items;
  std::vector<size_t> submission_index;  // Line index -> items index.
  std::vector<std::string> line_errors;
  size_t pos = 0;
  while (pos < request.body.size()) {
    size_t eol = request.body.find('\n', pos);
    if (eol == std::string::npos) eol = request.body.size();
    std::string line = request.body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto decoded = sched::ParseBatchLine(line);
    if (!decoded.ok()) {
      submission_index.push_back(SIZE_MAX);
      line_errors.push_back(decoded.status().message());
      continue;
    }
    std::string route = decoded->assignment.empty() ? default_assignment_
                                                    : decoded->assignment;
    if (route.empty()) {
      submission_index.push_back(SIZE_MAX);
      line_errors.push_back(
          "line has no \"assignment\" key and this daemon serves " +
          std::to_string(assignment_ids_.size()) +
          " assignments; add one to route the submission");
      continue;
    }
    submission_index.push_back(items.size());
    line_errors.push_back("");
    items.push_back(sched::MixedItem{std::move(route), decoded->id,
                                     std::move(decoded->source), trace});
  }
  if (submission_index.empty()) {
    return JsonResponse(
        400, "{\"error\":\"body contained no non-blank lines\"}");
  }

  sched::BatchStats stats;
  auto outcomes = scheduler_->GradeMixedBatch(items, &stats);

  size_t shed = 0;
  obs::HttpResponse response;
  response.content_type = "application/x-ndjson; charset=utf-8";
  for (size_t i = 0; i < submission_index.size(); ++i) {
    if (submission_index[i] == SIZE_MAX) {
      response.body += sched::BatchErrorToJson(
          i, Status::InvalidArgument(line_errors[i]));
      response.body += "\n";
      continue;
    }
    size_t j = submission_index[i];
    const sched::MixedOutcome& result = outcomes[j];
    if (result.status.ok()) {
      response.body += sched::BatchOutcomeToJson(
          items[j].id, i, items[j].assignment, result.outcome);
    } else if (result.status.code() == StatusCode::kNotFound) {
      response.body += sched::BatchRejectToJson(
          items[j].id, i, items[j].assignment, 404, 0, result.status);
    } else {
      // Admission shed (kUnavailable): the client should back off and
      // retry this line, and only this line.
      ++shed;
      response.body += sched::BatchRejectToJson(
          items[j].id, i, items[j].assignment, 429, options_.retry_after_s,
          result.status);
    }
    response.body += "\n";
  }

  // Only when *every* line was shed is the whole request backpressure: the
  // response itself becomes 429 + Retry-After, the signal an open-loop
  // client keys on. Mixed outcomes stay 200 — per-line codes carry them.
  if (shed > 0 && shed == submission_index.size()) {
    response.status = 429;
    response.headers.emplace_back("Retry-After",
                                  std::to_string(options_.retry_after_s));
  }
  return response;
}

obs::HttpResponse GradingDaemon::HandleMetrics(const obs::HttpRequest&) {
  obs::HttpResponse response;
  // version=0.0.4 is the Prometheus text-exposition content type scrapers
  // negotiate on.
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = obs::Registry::Global().Render();
  return response;
}

obs::HttpResponse GradingDaemon::HandleHealthz(const obs::HttpRequest&) {
  // Readiness ladder, most urgent reason first: draining (operator asked us
  // to go), saturated (every shard at its admission quota — any submission
  // would be shed), slo_fast_burn (some tenant is spending its error
  // budget at page rate — steer away before the quota sheds), degraded
  // (recent outcomes dominated by internal faults — the infrastructure,
  // not the students, is failing), ok.
  size_t depth = scheduler_->queue_depth();
  size_t capacity = scheduler_->queue_capacity();

  size_t window_faults = 0;
  size_t window = 0;
  {
    auto events = obs::EventLog::Global().Snapshot();
    size_t start = events.size() > options_.health_window
                       ? events.size() - options_.health_window
                       : 0;
    for (size_t i = start; i < events.size(); ++i) {
      ++window;
      if (events[i].failure_class == "internal_fault") ++window_faults;
    }
  }

  const char* status = "ok";
  int http_status = 200;
  if (draining()) {
    status = "draining";
    http_status = 503;
  } else if (scheduler_->Saturated()) {
    status = "saturated";
    http_status = 503;
  } else if (options_.slo_health &&
             obs::SloTracker::Global().FastBurnAny(obs::SloTracker::NowS())) {
    status = "slo_fast_burn";
    http_status = 503;
  } else if (window >= options_.health_window / 2 &&
             window_faults * 2 > window) {
    status = "degraded";
    http_status = 503;
  }

  std::string body = "{\"status\":\"";
  body += status;
  body += "\",\"queue_depth\":" + std::to_string(depth);
  body += ",\"queue_capacity\":" + std::to_string(capacity);
  body += ",\"recent_graded\":" + std::to_string(window);
  body += ",\"recent_internal_faults\":" + std::to_string(window_faults);
  body += "}";
  return JsonResponse(http_status, std::move(body));
}

obs::HttpResponse GradingDaemon::HandleStatusz(const obs::HttpRequest&) {
  auto uptime = std::chrono::duration_cast<std::chrono::seconds>(
                    std::chrono::steady_clock::now() - started_)
                    .count();
  int64_t busy = CounterValue("jfeed_sched_busy_us_total");
  int64_t idle = CounterValue("jfeed_sched_idle_us_total");
  double utilization =
      busy + idle > 0 ? static_cast<double>(busy) / (busy + idle) : 0.0;

  std::string body = "{\"build\":{\"version\":\"";
  body += kJfeedVersion;
  body += "\",\"compiler\":\"";
  body += __VERSION__;
  body += "\",\"obs\":\"on\"}";
  // Single-tenant daemons keep the scalar "assignment" field; multi-tenant
  // ones report "*" there (back-compat for dashboards keyed on it) and the
  // real list under "assignments".
  body += ",\"assignment\":\"";
  body += default_assignment_.empty() ? "*" : default_assignment_;
  body += "\"";
  body += ",\"assignments\":[";
  for (size_t i = 0; i < assignment_ids_.size(); ++i) {
    if (i > 0) body += ",";
    body += "\"" + assignment_ids_[i] + "\"";
  }
  body += "]";
  body += ",\"worker_id\":" + std::to_string(options_.worker_id);
  body += ",\"uptime_s\":" + std::to_string(uptime);
  body += ",\"start_unix_ms\":" + std::to_string(start_unix_ms_);
  body += ",\"draining\":";
  body += draining() ? "true" : "false";

  body += ",\"scheduler\":{\"jobs\":" + std::to_string(scheduler_->jobs());
  body += ",\"queue_depth\":" + std::to_string(scheduler_->queue_depth());
  body +=
      ",\"queue_capacity\":" + std::to_string(scheduler_->queue_capacity());
  body += ",\"shard_quota\":" +
          std::to_string(scheduler_->shard_queue_capacity());
  body += ",\"jobs_total\":" +
          std::to_string(CounterValue("jfeed_sched_jobs_total"));
  body += ",\"busy_us\":" + std::to_string(busy);
  body += ",\"idle_us\":" + std::to_string(idle);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", utilization);
  body += ",\"utilization\":";
  body += buf;
  // Per-assignment breakdown: in-system depth plus the labeled counters
  // (jfeed_sched_jobs_total{assignment=...}, jfeed_shed_total{...}).
  body += ",\"shards\":[";
  for (size_t i = 0; i < assignment_ids_.size(); ++i) {
    const std::string& id = assignment_ids_[i];
    if (i > 0) body += ",";
    body += "{\"assignment\":\"" + id + "\"";
    body += ",\"depth\":" + std::to_string(scheduler_->ShardDepth(id));
    body += ",\"graded\":" +
            std::to_string(ShardCounterValue("jfeed_sched_jobs_total", id));
    body += ",\"shed\":" +
            std::to_string(ShardCounterValue("jfeed_shed_total", id));
    body += "}";
  }
  body += "]}";

  body += ",\"cache\":{\"enabled\":";
  const sched::ResultCache* cache = scheduler_->cache();
  body += cache != nullptr ? "true" : "false";
  if (cache != nullptr) {
    sched::CacheStats stats = cache->stats();
    body += ",\"hits\":" + std::to_string(stats.hits);
    body += ",\"misses\":" + std::to_string(stats.misses);
    body += ",\"insertions\":" + std::to_string(stats.insertions);
    body += ",\"evictions\":" + std::to_string(stats.evictions);
    std::snprintf(buf, sizeof(buf), "%.4f", stats.HitRate());
    body += ",\"hit_rate\":";
    body += buf;
    body += ",\"entries\":" + std::to_string(cache->size());
  }
  body += "}";

  body += ",\"events\":{\"recorded\":" +
          std::to_string(obs::EventLog::Global().size());
  body += ",\"capacity\":" +
          std::to_string(obs::EventLog::Global().capacity());
  body += ",\"dropped\":" +
          std::to_string(obs::EventLog::Global().DroppedCount());
  body += "}";

  body += ",\"tracer\":{\"open_spans\":" +
          std::to_string(obs::Tracer::Global().OpenSpanCount());
  body += ",\"dropped\":" +
          std::to_string(obs::Tracer::Global().DroppedCount());
  body += "}}";
  return JsonResponse(200, std::move(body));
}

obs::HttpResponse GradingDaemon::HandleTracez(const obs::HttpRequest& request) {
  // ?format=chrome renders the rings as a Chrome/Perfetto trace instead of
  // the span listing; ?pid=N sets the export's process id so the broker
  // can splice several workers' exports into one stitched timeline.
  if (ParseQueryValue(request.query, "format") == "chrome") {
    int pid = 1;
    std::string pid_value = ParseQueryValue(request.query, "pid");
    if (!pid_value.empty()) pid = std::atoi(pid_value.c_str());
    std::string process_name =
        options_.worker_id >= 0
            ? "jfeedd-worker-" + std::to_string(options_.worker_id)
            : "jfeedd";
    return JsonResponse(
        200, obs::Tracer::Global().ExportChromeJson(pid, process_name));
  }

  size_t limit = ParseLimit(request.query, 256);
  auto spans = obs::Tracer::Global().Snapshot();  // Sorted by start time.
  size_t start = limit > 0 && spans.size() > limit ? spans.size() - limit : 0;

  std::string body = "{\"open_spans\":" +
                     std::to_string(obs::Tracer::Global().OpenSpanCount());
  body += ",\"dropped\":" +
          std::to_string(obs::Tracer::Global().DroppedCount());
  body += ",\"spans\":[";
  for (size_t i = start; i < spans.size(); ++i) {
    const auto& s = spans[i];
    if (i > start) body += ",";
    body += "{\"name\":\"";
    body += s.name;  // Span names are identifier-like literals; no escapes.
    body += "\",\"id\":" + std::to_string(s.id);
    body += ",\"parent\":" + std::to_string(s.parent_id);
    body += ",\"tid\":" + std::to_string(s.tid);
    body += ",\"start_us\":" + std::to_string(s.start_ns / 1000);
    body += ",\"dur_us\":" + std::to_string((s.end_ns - s.start_ns) / 1000);
    if ((s.trace_hi | s.trace_lo) != 0) {
      body += ",\"trace_id\":\"" +
              obs::TraceIdHex(obs::TraceContext{s.trace_hi, s.trace_lo, 0}) +
              "\"";
    }
    body += "}";
  }
  body += "]}";
  return JsonResponse(200, std::move(body));
}

obs::HttpResponse GradingDaemon::HandleEvents(const obs::HttpRequest& request) {
  size_t limit = ParseLimit(request.query, 0);
  std::string assignment = ParseQueryValue(request.query, "assignment");
  std::string trace_id = ParseQueryValue(request.query, "trace_id");
  obs::HttpResponse response;
  response.content_type = "application/x-ndjson; charset=utf-8";
  if (assignment.empty() && trace_id.empty()) {
    response.body = obs::EventLog::Global().RenderNdjson(limit);
    return response;
  }
  // ?assignment=<id> narrows the recorder to one tenant's submissions (the
  // multi-tenant debugging view); ?trace_id=<32 hex> to one distributed
  // trace's submissions (the cross-process join); both compose. limit
  // keeps the newest N matches.
  auto events = obs::EventLog::Global().Snapshot();
  std::vector<const obs::WideEvent*> matched;
  for (const auto& event : events) {
    if (!assignment.empty() && event.assignment != assignment) continue;
    if (!trace_id.empty() && event.trace_id != trace_id) continue;
    matched.push_back(&event);
  }
  size_t start = limit > 0 && matched.size() > limit ? matched.size() - limit
                                                     : 0;
  for (size_t i = start; i < matched.size(); ++i) {
    response.body += obs::ToJson(*matched[i]);
    response.body += "\n";
  }
  return response;
}

obs::HttpResponse GradingDaemon::HandleSloz(const obs::HttpRequest&) {
  return JsonResponse(200, obs::SloTracker::Global().RenderSlozJson(
                               obs::SloTracker::NowS()));
}

}  // namespace jfeed::service

#endif  // JFEED_OBS_DISABLED
