#include "pdg/epdg.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <utility>

#include "javalang/analysis.h"
#include "javalang/printer.h"
#include "support/fault.h"

namespace jfeed::pdg {

namespace java = jfeed::java;

const char* NodeTypeName(NodeType type) {
  switch (type) {
    case NodeType::kAssign: return "Assign";
    case NodeType::kBreak: return "Break";
    case NodeType::kCall: return "Call";
    case NodeType::kCond: return "Cond";
    case NodeType::kDecl: return "Decl";
    case NodeType::kReturn: return "Return";
  }
  return "?";
}

const char* EdgeTypeName(EdgeType type) {
  return type == EdgeType::kCtrl ? "Ctrl" : "Data";
}

std::set<std::string> Node::ReadNames() const {
  std::set<std::string> out;
  for (SymbolId id : reads) out.insert(NameOf(id));
  return out;
}

std::set<std::string> Node::WriteNames() const {
  std::set<std::string> out;
  for (SymbolId id : writes) out.insert(NameOf(id));
  return out;
}

std::set<std::string> Node::VarNames() const {
  std::set<std::string> out;
  ForEachVar([&out](const std::string& name) { out.insert(name); });
  return out;
}

Epdg::Epdg(std::string method_name, EpdgMemory* memory)
    : method_name_(std::move(method_name)) {
  if (memory == nullptr) {
    owned_mem_ = std::make_unique<EpdgMemory>();
    memory = owned_mem_.get();
  }
  mem_ = memory;
  Arena* arena = &mem_->arena;
  types_.Attach(arena);
  contents_.Attach(arena);
  lines_.Attach(arena);
  asts_.Attach(arena);
  var_spans_.Attach(arena);
  var_pool_.Attach(arena);
  edges_.Attach(arena);
}

Node Epdg::NodeAt(graph::NodeId id) const {
  Node n;
  n.type = types_[id];
  n.content = contents_[id];
  n.line = lines_[id];
  n.ast = asts_[id];
  const VarSpan& vs = var_spans_[id];
  n.reads = {var_pool_.data() + vs.begin, vs.read_count};
  n.writes = {var_pool_.data() + vs.begin + vs.read_count, vs.write_count};
  n.symbols = &mem_->symbols;
  return n;
}

graph::NodeId Epdg::AddNode(NodeType type, std::string_view content, int line,
                            const java::Expr* ast,
                            std::span<const SymbolId> reads,
                            std::span<const SymbolId> writes) {
  graph::NodeId id = static_cast<graph::NodeId>(types_.size());
  types_.push_back(type);
  contents_.push_back(mem_->arena.StrDup(content));
  lines_.push_back(line);
  asts_.push_back(ast);
  VarSpan vs;
  vs.begin = static_cast<uint32_t>(var_pool_.size());
  vs.read_count = static_cast<uint16_t>(reads.size());
  vs.write_count = static_cast<uint16_t>(writes.size());
  if (!reads.empty()) {
    std::memcpy(var_pool_.Append(reads.size()), reads.data(),
                reads.size() * sizeof(SymbolId));
  }
  if (!writes.empty()) {
    std::memcpy(var_pool_.Append(writes.size()), writes.data(),
                writes.size() * sizeof(SymbolId));
  }
  var_spans_.push_back(vs);
  return id;
}

void Epdg::AddEdge(graph::NodeId source, graph::NodeId target, EdgeType type) {
  for (const Edge& e : edges_) {
    if (e.source == source && e.target == target && e.type == type) return;
  }
  edges_.push_back({source, target, type});
  frozen_ = false;
}

const java::Expr* Epdg::KeepAst(java::ExprPtr ast) {
  owned_asts_.push_back(std::move(ast));
  return owned_asts_.back().get();
}

void Epdg::Freeze() const {
  const size_t edge_count = edges_.size();
  Arena* arena = &mem_->arena;
  uint32_t* keys = arena->AllocateArray<uint32_t>(edge_count);
  uint32_t* payloads = arena->AllocateArray<uint32_t>(edge_count);
  for (size_t i = 0; i < edge_count; ++i) {
    keys[i] = static_cast<uint32_t>(edges_[i].source);
    payloads[i] = PackEdge(edges_[i].target, edges_[i].type);
  }
  out_.Build(arena, types_.size(), edge_count, keys, payloads);
  frozen_ = true;
}

size_t Epdg::CountEdges(EdgeType type) const {
  size_t n = 0;
  for (const Edge& e : edges_) {
    if (e.type == type) ++n;
  }
  return n;
}

std::string Epdg::ToDot() const {
  std::string out = "digraph epdg {\n  rankdir=TB;\n";
  for (size_t i = 0; i < types_.size(); ++i) {
    // Escape quotes for DOT.
    std::string escaped;
    for (char c : contents_[i]) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    out += "  v" + std::to_string(i) + " [label=\"v" + std::to_string(i) +
           ": " + escaped + "\\n(" + NodeTypeName(types_[i]) + ")\"];\n";
  }
  for (const Edge& e : edges_) {
    out += "  v" + std::to_string(e.source) + " -> v" +
           std::to_string(e.target);
    out += e.type == EdgeType::kCtrl ? " [style=dashed];\n" : ";\n";
  }
  out += "}\n";
  return out;
}

namespace {

/// Reaching-definition environment over interned symbols: an array indexed
/// by SymbolId whose entries are immutable, ascending definition-node
/// lists. Updates replace the entry with a freshly arena-allocated list
/// (copy-append for weak updates), never mutate a list in place — branch
/// snapshots share list storage, so in-place growth would corrupt sibling
/// branches. Snapshots deep-copy only the header array.
struct DefList {
  const graph::NodeId* data = nullptr;
  uint32_t size = 0;
};

using DefEnv = ArenaVec<DefList>;

class Builder final : java::VarSink {
 public:
  Builder(const java::Method& method, EpdgMemory* memory)
      : method_(method),
        epdg_(method.name, memory),
        arena_(epdg_.arena()),
        symbols_(epdg_.mutable_symbols()) {
    env_.Attach(arena_);
    reads_.Attach(arena_);
    writes_.Attach(arena_);
  }

  Result<Epdg> Build() {
    // Parameters become Decl nodes and initial definitions.
    for (const auto& param : method_.params) {
      buffer_.clear();
      buffer_ += param.type.ToString();
      buffer_ += ' ';
      buffer_ += param.name;
      reads_.clear();
      writes_.clear();
      SymbolId pid = symbols_->Intern(param.name);
      writes_.push_back(pid);
      const java::Expr* ast = epdg_.KeepAst(java::MakeName(param.name));
      graph::NodeId id = EmitNode(NodeType::kDecl, buffer_, ast, method_.line,
                                  graph::kInvalidNode);
      StrongSet(pid, id);
    }
    if (method_.body) {
      JFEED_RETURN_IF_ERROR(ProcessStmt(*method_.body, graph::kInvalidNode));
    }
    return std::move(epdg_);
  }

 private:
  // --- VarSink: collects the current node's vars as sorted id spans -------

  void OnRead(const std::string& name) override { InsertByName(&reads_, name); }
  void OnWrite(const std::string& name) override {
    if (!drop_writes_) InsertByName(&writes_, name);
  }

  /// Sorted-by-name unique insert; node var sets have a handful of entries,
  /// so the linear shift beats any cleverness.
  void InsertByName(ArenaVec<SymbolId>* vec, const std::string& name) {
    SymbolId id = symbols_->Intern(name);
    size_t pos = 0;
    while (pos < vec->size()) {
      if ((*vec)[pos] == id) return;
      if (name < symbols_->Name((*vec)[pos])) break;
      ++pos;
    }
    vec->push_back(id);
    for (size_t i = vec->size() - 1; i > pos; --i) (*vec)[i] = (*vec)[i - 1];
    (*vec)[pos] = id;
  }

  // --- Definition environment ---------------------------------------------

  DefList Lookup(SymbolId id) const {
    return id < env_.size() ? env_[id] : DefList{};
  }

  void EnsureEnv(SymbolId id) {
    if (id >= env_.size()) env_.resize(id + 1, DefList{});
  }

  void StrongSet(SymbolId id, graph::NodeId node) {
    EnsureEnv(id);
    graph::NodeId* list = arena_->AllocateArray<graph::NodeId>(1);
    list[0] = node;
    env_[id] = {list, 1};
  }

  /// Weak update: the new definition joins the old ones. `node` was just
  /// appended, so it is greater than every id in the old list and the
  /// ascending order is preserved by appending.
  void WeakAdd(SymbolId id, graph::NodeId node) {
    EnsureEnv(id);
    DefList old = env_[id];
    graph::NodeId* list = arena_->AllocateArray<graph::NodeId>(old.size + 1);
    if (old.size > 0) {
      std::memcpy(list, old.data, old.size * sizeof(graph::NodeId));
    }
    list[old.size] = node;
    env_[id] = {list, old.size + 1};
  }

  /// Fresh header array sharing the (immutable) def lists. Element writes
  /// into env_ after a snapshot therefore never disturb the snapshot.
  DefEnv CopyEnv(const DefEnv& src) {
    DefEnv out(arena_);
    if (!src.empty()) {
      DefList* dst = out.Append(src.size());
      std::memcpy(dst, src.data(), src.size() * sizeof(DefList));
    }
    return out;
  }

  /// Union of two environments: per variable, the merge of two ascending
  /// unique lists (shared wholesale when only one side defines it).
  DefEnv MergeEnvs(const DefEnv& a, const DefEnv& b) {
    DefEnv out(arena_);
    size_t n = std::max(a.size(), b.size());
    out.resize(n, DefList{});
    for (size_t i = 0; i < n; ++i) {
      DefList la = i < a.size() ? a[i] : DefList{};
      DefList lb = i < b.size() ? b[i] : DefList{};
      if (la.size == 0 || la.data == lb.data) {
        out[i] = lb;
      } else if (lb.size == 0) {
        out[i] = la;
      } else {
        graph::NodeId* merged =
            arena_->AllocateArray<graph::NodeId>(la.size + lb.size);
        uint32_t x = 0, y = 0, m = 0;
        while (x < la.size && y < lb.size) {
          if (la.data[x] == lb.data[y]) {
            merged[m++] = la.data[x++];
            ++y;
          } else if (la.data[x] < lb.data[y]) {
            merged[m++] = la.data[x++];
          } else {
            merged[m++] = lb.data[y++];
          }
        }
        while (x < la.size) merged[m++] = la.data[x++];
        while (y < lb.size) merged[m++] = lb.data[y++];
        out[i] = {merged, m};
      }
    }
    return out;
  }

  // --- Node emission --------------------------------------------------------

  /// Renders the normalized content into the reused buffer.
  std::string_view ExprContent(const java::Expr& e) {
    buffer_.clear();
    java::AppendExprToString(e, &buffer_);
    return buffer_;
  }

  /// Appends a node carrying the current reads_/writes_ scratch spans,
  /// wiring its Ctrl edge and the Data edges from the reaching definitions
  /// of its reads (reads iterate in name order, definitions ascending —
  /// the edge-list order the matcher's canonical output depends on).
  graph::NodeId EmitNode(NodeType type, std::string_view content,
                         const java::Expr* ast, int line, graph::NodeId ctrl) {
    graph::NodeId id =
        epdg_.AddNode(type, content, line, ast,
                      {reads_.data(), reads_.size()},
                      {writes_.data(), writes_.size()});
    if (ctrl != graph::kInvalidNode) {
      epdg_.AddEdge(ctrl, id, EdgeType::kCtrl);
    }
    for (SymbolId r : reads_) {
      DefList defs = Lookup(r);
      for (uint32_t k = 0; k < defs.size; ++k) {
        epdg_.AddEdge(defs.data[k], id, EdgeType::kData);
      }
    }
    return id;
  }

  /// Creates a node for `expr` under the control of `ctrl` (kInvalidNode
  /// for top level) and updates the definition environment with its writes.
  graph::NodeId Emit(NodeType type, std::string_view content,
                     const java::Expr* expr, int line, graph::NodeId ctrl,
                     bool weak_update = false) {
    reads_.clear();
    writes_.clear();
    if (expr != nullptr) java::VisitVars(*expr, this);
    graph::NodeId id = EmitNode(type, content, expr, line, ctrl);
    for (SymbolId w : writes_) {
      if (weak_update) {
        WeakAdd(w, id);
      } else {
        StrongSet(w, id);
      }
    }
    return id;
  }

  /// True when the statement-level expression stores through an array
  /// element (weak update of the array variable).
  static bool IsArrayElementStore(const java::Expr& e) {
    if (e.kind == java::ExprKind::kAssign) {
      return e.lhs->kind == java::ExprKind::kArrayAccess;
    }
    if (e.kind == java::ExprKind::kUnary &&
        (e.unary_op == java::UnaryOp::kPreInc ||
         e.unary_op == java::UnaryOp::kPreDec ||
         e.unary_op == java::UnaryOp::kPostInc ||
         e.unary_op == java::UnaryOp::kPostDec)) {
      return e.lhs->kind == java::ExprKind::kArrayAccess;
    }
    return false;
  }

  Status ProcessStmt(const java::Stmt& stmt, graph::NodeId ctrl) {
    switch (stmt.kind) {
      case java::StmtKind::kBlock:
        for (const auto& child : stmt.body) {
          JFEED_RETURN_IF_ERROR(ProcessStmt(*child, ctrl));
        }
        return Status::OK();

      case java::StmtKind::kLocalVarDecl: {
        for (const auto& decl : stmt.decls) {
          buffer_.clear();
          buffer_ += stmt.decl_type.ToString();
          buffer_ += ' ';
          buffer_ += decl.name;
          reads_.clear();
          writes_.clear();
          const java::Expr* ast = nullptr;
          if (decl.init) {
            buffer_ += " = ";
            java::AppendExprToString(*decl.init, &buffer_);
            // The declared variable is this node's only write: side-effect
            // writes inside the initializer are dropped, exactly like the
            // old VarsRead-only collection.
            drop_writes_ = true;
            java::VisitVars(*decl.init, this);
            drop_writes_ = false;
            // Declarations appear to the AST backend as the assignment
            // `name = init` (mirrors the node content "int name = init").
            ast = epdg_.KeepAst(
                java::MakeAssign(java::AssignOp::kAssign,
                                 java::MakeName(decl.name),
                                 decl.init->Clone()));
          } else {
            ast = epdg_.KeepAst(java::MakeName(decl.name));
          }
          SymbolId name_id = symbols_->Intern(decl.name);
          InsertByName(&writes_, decl.name);
          graph::NodeId id =
              EmitNode(NodeType::kAssign, buffer_, ast, stmt.line, ctrl);
          StrongSet(name_id, id);
        }
        return Status::OK();
      }

      case java::StmtKind::kExprStmt: {
        const java::Expr& e = *stmt.expr;
        NodeType type = e.kind == java::ExprKind::kMethodCall
                            ? NodeType::kCall
                            : NodeType::kAssign;
        Emit(type, ExprContent(e), &e, stmt.line, ctrl,
             IsArrayElementStore(e));
        return Status::OK();
      }

      case java::StmtKind::kIf: {
        graph::NodeId cond = Emit(NodeType::kCond, ExprContent(*stmt.expr),
                                  stmt.expr.get(), stmt.line, ctrl);
        if (stmt.else_branch) {
          DefEnv before = CopyEnv(env_);
          JFEED_RETURN_IF_ERROR(ProcessStmt(*stmt.then_branch, cond));
          DefEnv after_then = env_;
          env_ = before;  // `before` is not read again below.
          JFEED_RETURN_IF_ERROR(ProcessStmt(*stmt.else_branch, cond));
          env_ = MergeEnvs(after_then, env_);
        } else {
          // No else: the condition is assumed fulfilled (Sec. III-A), so
          // the then-branch environment carries forward unchanged.
          JFEED_RETURN_IF_ERROR(ProcessStmt(*stmt.then_branch, cond));
        }
        return Status::OK();
      }

      case java::StmtKind::kWhile: {
        graph::NodeId cond = Emit(NodeType::kCond, ExprContent(*stmt.expr),
                                  stmt.expr.get(), stmt.line, ctrl);
        JFEED_RETURN_IF_ERROR(ProcessStmt(*stmt.loop_body, cond));
        return Status::OK();
      }

      case java::StmtKind::kDoWhile: {
        // The body executes before the condition is first evaluated, so the
        // body is processed first (its definitions reach the condition's
        // reads) and the condition's Ctrl edges to the body nodes are added
        // retroactively.
        size_t first = epdg_.NodeCount();
        JFEED_RETURN_IF_ERROR(ProcessStmt(*stmt.loop_body,
                                          graph::kInvalidNode));
        size_t last = epdg_.NodeCount();
        graph::NodeId cond = Emit(NodeType::kCond, ExprContent(*stmt.expr),
                                  stmt.expr.get(), stmt.line, ctrl);
        for (size_t i = first; i < last; ++i) {
          epdg_.AddEdge(cond, static_cast<graph::NodeId>(i), EdgeType::kCtrl);
        }
        return Status::OK();
      }

      case java::StmtKind::kFor: {
        if (stmt.for_init) {
          JFEED_RETURN_IF_ERROR(ProcessStmt(*stmt.for_init, ctrl));
        }
        graph::NodeId cond;
        if (stmt.expr) {
          cond = Emit(NodeType::kCond, ExprContent(*stmt.expr),
                      stmt.expr.get(), stmt.line, ctrl);
        } else {
          cond = Emit(NodeType::kCond, "true", nullptr, stmt.line, ctrl);
        }
        JFEED_RETURN_IF_ERROR(ProcessStmt(*stmt.loop_body, cond));
        for (const auto& update : stmt.for_update) {
          Emit(java::ExprKind::kMethodCall == update->kind
                   ? NodeType::kCall
                   : NodeType::kAssign,
               ExprContent(*update), update.get(), stmt.line, cond,
               IsArrayElementStore(*update));
        }
        return Status::OK();
      }

      case java::StmtKind::kSwitch: {
        // Definition 1: "Cond entails loop, if or switch expressions". The
        // selector becomes the Cond node; every arm is controlled by it.
        // Data-flow-wise the arms are alternative branches (like if/else
        // chains): the environments of all arms merge.
        graph::NodeId cond = Emit(NodeType::kCond, ExprContent(*stmt.expr),
                                  stmt.expr.get(), stmt.line, ctrl);
        DefEnv before = CopyEnv(env_);
        DefEnv merged;
        bool first_arm = true;
        for (const auto& arm : stmt.switch_cases) {
          env_ = CopyEnv(before);
          for (const auto& child : arm.body) {
            JFEED_RETURN_IF_ERROR(ProcessStmt(*child, cond));
          }
          merged = first_arm ? env_ : MergeEnvs(merged, env_);
          first_arm = false;
        }
        if (!first_arm) env_ = merged;
        return Status::OK();
      }

      case java::StmtKind::kReturn: {
        buffer_.clear();
        buffer_ += "return";
        if (stmt.expr) {
          buffer_ += ' ';
          java::AppendExprToString(*stmt.expr, &buffer_);
        }
        Emit(NodeType::kReturn, buffer_, stmt.expr.get(), stmt.line, ctrl);
        return Status::OK();
      }

      case java::StmtKind::kBreak:
        Emit(NodeType::kBreak, "break", nullptr, stmt.line, ctrl);
        return Status::OK();

      case java::StmtKind::kContinue:
        // The paper's node-type set has no Continue; we model it as a Break
        // node whose content distinguishes it.
        Emit(NodeType::kBreak, "continue", nullptr, stmt.line, ctrl);
        return Status::OK();
    }
    return Status::Internal("unhandled statement kind");
  }

  const java::Method& method_;
  Epdg epdg_;
  Arena* arena_;
  SymbolTable* symbols_;
  DefEnv env_;
  /// Current node's interned var sets, sorted by name (scratch, reused).
  ArenaVec<SymbolId> reads_;
  ArenaVec<SymbolId> writes_;
  bool drop_writes_ = false;
  std::string buffer_;  ///< Reused content-rendering buffer.
};

}  // namespace

Result<Epdg> BuildEpdg(const java::Method& method, EpdgMemory* memory) {
  JFEED_FAULT_POINT(fault::points::kEpdgBuilder);
  // The decl/param expressions the builder synthesizes live exactly as
  // long as the Epdg, and the Epdg must not outlive `memory` — so when a
  // pool is supplied those nodes can share its arena. (The graph's
  // destructor still runs before Reset() per the lifetime contract, which
  // is all their destruction needs.)
  std::optional<java::AstArenaScope> ast_scope;
  if (memory != nullptr) ast_scope.emplace(&memory->arena);
  return Builder(method, memory).Build();
}

Result<std::vector<Epdg>> BuildAllEpdgs(const java::CompilationUnit& unit,
                                        EpdgMemory* memory) {
  std::vector<Epdg> out;
  out.reserve(unit.methods.size());
  for (const auto& method : unit.methods) {
    JFEED_ASSIGN_OR_RETURN(Epdg g, BuildEpdg(method, memory));
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace jfeed::pdg
