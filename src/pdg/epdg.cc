#include "pdg/epdg.h"

#include <map>
#include <utility>

#include "javalang/analysis.h"
#include "javalang/printer.h"
#include "support/fault.h"

namespace jfeed::pdg {

namespace java = jfeed::java;

const char* NodeTypeName(NodeType type) {
  switch (type) {
    case NodeType::kAssign: return "Assign";
    case NodeType::kBreak: return "Break";
    case NodeType::kCall: return "Call";
    case NodeType::kCond: return "Cond";
    case NodeType::kDecl: return "Decl";
    case NodeType::kReturn: return "Return";
  }
  return "?";
}

const char* EdgeTypeName(EdgeType type) {
  return type == EdgeType::kCtrl ? "Ctrl" : "Data";
}

size_t Epdg::CountEdges(EdgeType type) const {
  size_t n = 0;
  for (size_t i = 0; i < graph_.EdgeCount(); ++i) {
    if (graph_.GetEdge(static_cast<graph::EdgeId>(i)).data == type) ++n;
  }
  return n;
}

std::string Epdg::ToDot() const {
  std::string out = "digraph epdg {\n  rankdir=TB;\n";
  for (size_t i = 0; i < graph_.NodeCount(); ++i) {
    const Node& n = graph_.NodeData(static_cast<graph::NodeId>(i));
    std::string label = n.content;
    // Escape quotes for DOT.
    std::string escaped;
    for (char c : label) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    out += "  v" + std::to_string(i) + " [label=\"v" + std::to_string(i) +
           ": " + escaped + "\\n(" + NodeTypeName(n.type) + ")\"];\n";
  }
  for (size_t i = 0; i < graph_.EdgeCount(); ++i) {
    const auto& e = graph_.GetEdge(static_cast<graph::EdgeId>(i));
    out += "  v" + std::to_string(e.source) + " -> v" +
           std::to_string(e.target);
    out += e.data == EdgeType::kCtrl ? " [style=dashed];\n" : ";\n";
  }
  out += "}\n";
  return out;
}

namespace {

/// Reaching-definition environment: variable -> set of defining nodes.
using DefEnv = std::map<std::string, std::set<graph::NodeId>>;

DefEnv MergeEnvs(const DefEnv& a, const DefEnv& b) {
  DefEnv out = a;
  for (const auto& [var, defs] : b) {
    out[var].insert(defs.begin(), defs.end());
  }
  return out;
}

class Builder {
 public:
  explicit Builder(const java::Method& method)
      : method_(method), epdg_(method.name) {}

  Result<Epdg> Build() {
    // Parameters become Decl nodes and initial definitions.
    for (const auto& param : method_.params) {
      Node node;
      node.type = NodeType::kDecl;
      node.content = param.type.ToString() + " " + param.name;
      node.writes.insert(param.name);
      node.vars.insert(param.name);
      node.ast = std::shared_ptr<const java::Expr>(
          java::MakeName(param.name));
      node.line = method_.line;
      graph::NodeId id = epdg_.AddNode(std::move(node));
      env_[param.name] = {id};
    }
    if (method_.body) {
      JFEED_RETURN_IF_ERROR(ProcessStmt(*method_.body, graph::kInvalidNode));
    }
    return std::move(epdg_);
  }

 private:
  /// Creates a node under the control of `ctrl` (kInvalidNode for top level),
  /// wiring Data edges from the current reaching definitions of its reads
  /// and updating the definition environment with its writes.
  graph::NodeId Emit(NodeType type, std::string content,
                     const java::Expr* expr, int line, graph::NodeId ctrl,
                     bool weak_update = false) {
    Node node;
    node.type = type;
    node.content = std::move(content);
    node.line = line;
    if (expr != nullptr) {
      node.reads = java::VarsRead(*expr);
      node.writes = java::VarsWritten(*expr);
      node.vars = java::VarsMentioned(*expr);
      node.ast = std::shared_ptr<const java::Expr>(expr->Clone());
    }
    graph::NodeId id = epdg_.AddNode(node);
    if (ctrl != graph::kInvalidNode) {
      epdg_.AddEdge(ctrl, id, EdgeType::kCtrl);
    }
    for (const auto& var : node.reads) {
      auto it = env_.find(var);
      if (it == env_.end()) continue;
      for (graph::NodeId def : it->second) {
        epdg_.AddEdge(def, id, EdgeType::kData);
      }
    }
    for (const auto& var : node.writes) {
      if (weak_update) {
        env_[var].insert(id);
      } else {
        env_[var] = {id};
      }
    }
    return id;
  }

  /// True when the statement-level expression stores through an array
  /// element (weak update of the array variable).
  static bool IsArrayElementStore(const java::Expr& e) {
    if (e.kind == java::ExprKind::kAssign) {
      return e.lhs->kind == java::ExprKind::kArrayAccess;
    }
    if (e.kind == java::ExprKind::kUnary &&
        (e.unary_op == java::UnaryOp::kPreInc ||
         e.unary_op == java::UnaryOp::kPreDec ||
         e.unary_op == java::UnaryOp::kPostInc ||
         e.unary_op == java::UnaryOp::kPostDec)) {
      return e.lhs->kind == java::ExprKind::kArrayAccess;
    }
    return false;
  }

  Status ProcessStmt(const java::Stmt& stmt, graph::NodeId ctrl) {
    switch (stmt.kind) {
      case java::StmtKind::kBlock:
        for (const auto& child : stmt.body) {
          JFEED_RETURN_IF_ERROR(ProcessStmt(*child, ctrl));
        }
        return Status::OK();

      case java::StmtKind::kLocalVarDecl: {
        for (const auto& decl : stmt.decls) {
          std::string content = stmt.decl_type.ToString() + " " + decl.name;
          Node node;
          node.type = NodeType::kAssign;
          node.line = stmt.line;
          if (decl.init) {
            content += " = " + java::ExprToString(*decl.init);
            node.reads = java::VarsRead(*decl.init);
            node.ast = std::shared_ptr<const java::Expr>(
                java::MakeAssign(java::AssignOp::kAssign,
                                 java::MakeName(decl.name),
                                 decl.init->Clone()));
          } else {
            node.ast = std::shared_ptr<const java::Expr>(
                java::MakeName(decl.name));
          }
          node.content = std::move(content);
          node.writes.insert(decl.name);
          node.vars = node.reads;
          node.vars.insert(decl.name);
          graph::NodeId id = epdg_.AddNode(node);
          if (ctrl != graph::kInvalidNode) {
            epdg_.AddEdge(ctrl, id, EdgeType::kCtrl);
          }
          for (const auto& var : node.reads) {
            auto it = env_.find(var);
            if (it == env_.end()) continue;
            for (graph::NodeId def : it->second) {
              epdg_.AddEdge(def, id, EdgeType::kData);
            }
          }
          env_[decl.name] = {id};
        }
        return Status::OK();
      }

      case java::StmtKind::kExprStmt: {
        const java::Expr& e = *stmt.expr;
        NodeType type = e.kind == java::ExprKind::kMethodCall
                            ? NodeType::kCall
                            : NodeType::kAssign;
        Emit(type, java::ExprToString(e), &e, stmt.line, ctrl,
             IsArrayElementStore(e));
        return Status::OK();
      }

      case java::StmtKind::kIf: {
        graph::NodeId cond = Emit(NodeType::kCond,
                                  java::ExprToString(*stmt.expr),
                                  stmt.expr.get(), stmt.line, ctrl);
        DefEnv before = env_;
        JFEED_RETURN_IF_ERROR(ProcessStmt(*stmt.then_branch, cond));
        if (stmt.else_branch) {
          DefEnv after_then = std::move(env_);
          env_ = before;
          JFEED_RETURN_IF_ERROR(ProcessStmt(*stmt.else_branch, cond));
          env_ = MergeEnvs(after_then, env_);
        }
        // No else: the condition is assumed fulfilled (Sec. III-A), so the
        // then-branch environment carries forward unchanged.
        return Status::OK();
      }

      case java::StmtKind::kWhile: {
        graph::NodeId cond = Emit(NodeType::kCond,
                                  java::ExprToString(*stmt.expr),
                                  stmt.expr.get(), stmt.line, ctrl);
        JFEED_RETURN_IF_ERROR(ProcessStmt(*stmt.loop_body, cond));
        return Status::OK();
      }

      case java::StmtKind::kDoWhile: {
        // The body executes before the condition is first evaluated.
        // The Cond node still controls the body (it decides re-execution),
        // but data-flow-wise the body precedes the condition.
        // We emit the condition node first to keep Ctrl orientation uniform,
        // then process the body; the condition's reads are wired afterwards
        // against the post-body environment by emitting a second pass is not
        // possible with append-only nodes, so we process the body first and
        // then the condition, adding Ctrl edges from the condition.
        DefEnv before = env_;
        std::vector<graph::NodeId> body_nodes;
        size_t first = epdg_.NodeCount();
        JFEED_RETURN_IF_ERROR(ProcessStmt(*stmt.loop_body,
                                          graph::kInvalidNode));
        size_t last = epdg_.NodeCount();
        graph::NodeId cond = Emit(NodeType::kCond,
                                  java::ExprToString(*stmt.expr),
                                  stmt.expr.get(), stmt.line, ctrl);
        for (size_t i = first; i < last; ++i) {
          epdg_.AddEdge(cond, static_cast<graph::NodeId>(i), EdgeType::kCtrl);
        }
        (void)before;
        (void)body_nodes;
        return Status::OK();
      }

      case java::StmtKind::kFor: {
        if (stmt.for_init) {
          JFEED_RETURN_IF_ERROR(ProcessStmt(*stmt.for_init, ctrl));
        }
        std::string cond_text =
            stmt.expr ? java::ExprToString(*stmt.expr) : "true";
        graph::NodeId cond = Emit(NodeType::kCond, cond_text,
                                  stmt.expr.get(), stmt.line, ctrl);
        JFEED_RETURN_IF_ERROR(ProcessStmt(*stmt.loop_body, cond));
        for (const auto& update : stmt.for_update) {
          Emit(java::ExprKind::kMethodCall == update->kind ? NodeType::kCall
                                                           : NodeType::kAssign,
               java::ExprToString(*update), update.get(), stmt.line, cond,
               IsArrayElementStore(*update));
        }
        return Status::OK();
      }

      case java::StmtKind::kSwitch: {
        // Definition 1: "Cond entails loop, if or switch expressions". The
        // selector becomes the Cond node; every arm is controlled by it.
        // Data-flow-wise the arms are alternative branches (like if/else
        // chains): the environments of all arms merge.
        graph::NodeId cond = Emit(NodeType::kCond,
                                  java::ExprToString(*stmt.expr),
                                  stmt.expr.get(), stmt.line, ctrl);
        DefEnv before = env_;
        DefEnv merged;
        bool first_arm = true;
        for (const auto& arm : stmt.switch_cases) {
          env_ = before;
          for (const auto& child : arm.body) {
            JFEED_RETURN_IF_ERROR(ProcessStmt(*child, cond));
          }
          merged = first_arm ? env_ : MergeEnvs(merged, env_);
          first_arm = false;
        }
        if (!first_arm) env_ = std::move(merged);
        return Status::OK();
      }
      case java::StmtKind::kReturn: {
        std::string content = "return";
        if (stmt.expr) content += " " + java::ExprToString(*stmt.expr);
        Emit(NodeType::kReturn, std::move(content), stmt.expr.get(),
             stmt.line, ctrl);
        return Status::OK();
      }

      case java::StmtKind::kBreak:
        Emit(NodeType::kBreak, "break", nullptr, stmt.line, ctrl);
        return Status::OK();

      case java::StmtKind::kContinue:
        // The paper's node-type set has no Continue; we model it as a Break
        // node whose content distinguishes it.
        Emit(NodeType::kBreak, "continue", nullptr, stmt.line, ctrl);
        return Status::OK();
    }
    return Status::Internal("unhandled statement kind");
  }

  const java::Method& method_;
  Epdg epdg_;
  DefEnv env_;
};

}  // namespace

Result<Epdg> BuildEpdg(const java::Method& method) {
  JFEED_FAULT_POINT(fault::points::kEpdgBuilder);
  return Builder(method).Build();
}

Result<std::vector<Epdg>> BuildAllEpdgs(const java::CompilationUnit& unit) {
  std::vector<Epdg> out;
  out.reserve(unit.methods.size());
  for (const auto& method : unit.methods) {
    JFEED_ASSIGN_OR_RETURN(Epdg g, BuildEpdg(method));
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace jfeed::pdg
