#ifndef JFEED_PDG_EPDG_H_
#define JFEED_PDG_EPDG_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/edge_set.h"
#include "javalang/ast.h"
#include "support/result.h"

namespace jfeed::pdg {

/// Graph-node types of Definition 1. `Decl` is used only for method
/// parameters; local variable declarations with initializers are `Assign`
/// nodes (this matches the paper's Fig. 3, where `int even = 0` is an
/// assignment node).
enum class NodeType { kAssign, kBreak, kCall, kCond, kDecl, kReturn };

/// Edge types of Definition 2.
enum class EdgeType { kCtrl, kData };

const char* NodeTypeName(NodeType type);
const char* EdgeTypeName(EdgeType type);

/// Payload of an extended-PDG node: its type, the normalized Java expression
/// it performs (Definition 1's `c`), and the variable sets the matcher and
/// the data-flow construction need.
struct Node {
  NodeType type = NodeType::kAssign;
  std::string content;              ///< Normalized Java expression.
  std::set<std::string> reads;      ///< Variables whose value is read.
  std::set<std::string> writes;     ///< Variables (re)assigned.
  std::set<std::string> vars;       ///< reads ∪ writes — the paper's Variables(c).
  /// Expression form of the content (declarations appear as assignments,
  /// returns as their value); null for nodes without one (break). Used by
  /// the AST-based matching backend.
  std::shared_ptr<const java::Expr> ast;
  int line = 0;                     ///< Source line (for feedback messages).
};

/// The extended program dependence graph of one method (Definition 3).
class Epdg {
 public:
  using Graph = graph::Digraph<Node, EdgeType>;

  Epdg() = default;
  explicit Epdg(std::string method_name)
      : method_name_(std::move(method_name)) {}

  const std::string& method_name() const { return method_name_; }

  graph::NodeId AddNode(Node node) { return graph_.AddNode(std::move(node)); }
  void AddEdge(graph::NodeId source, graph::NodeId target, EdgeType type) {
    if (!HasEdge(source, target, type)) {
      graph_.AddEdge(source, target, type);
      edge_set_.Insert(source, target, static_cast<int>(type));
    }
  }

  size_t NodeCount() const { return graph_.NodeCount(); }
  size_t EdgeCount() const { return graph_.EdgeCount(); }
  const Node& NodeAt(graph::NodeId id) const { return graph_.NodeData(id); }
  /// O(1): typed-edge hash probe, not an out-adjacency scan. This is the
  /// innermost check of the matching engine (Definition 7 condition 2) and
  /// of the edge-existence constraints (Definition 9).
  bool HasEdge(graph::NodeId source, graph::NodeId target,
               EdgeType type) const {
    return edge_set_.Contains(source, target, static_cast<int>(type));
  }
  const Graph& graph() const { return graph_; }

  /// Number of edges of the given type (testing / reporting convenience).
  size_t CountEdges(EdgeType type) const;

  /// GraphViz rendering; Data edges solid, Ctrl edges dashed (as in Fig. 3).
  std::string ToDot() const;

 private:
  std::string method_name_;
  Graph graph_;
  graph::TypedEdgeSet edge_set_;
};

/// Builds the extended program dependence graph of `method` following the
/// conventions of Sec. III-A:
///   * Ctrl edges run from a Cond node to the nodes it *immediately*
///     controls (transitive Ctrl edges are never created).
///   * Data edges are computed by reaching definitions on an acyclic
///     one-iteration interpretation of the control flow: loop bodies execute
///     exactly once, conditions are assumed fulfilled (no bypass paths), and
///     loops never iterate twice (no back edges) — the Bhattacharjee & Jamil
///     convention the paper adopts.
///   * Array-element stores are weak updates: they add a definition of the
///     array variable without killing previous definitions.
Result<Epdg> BuildEpdg(const java::Method& method);

/// Builds the EPDG of every method in `unit`, in declaration order.
Result<std::vector<Epdg>> BuildAllEpdgs(const java::CompilationUnit& unit);

}  // namespace jfeed::pdg

#endif  // JFEED_PDG_EPDG_H_
