#ifndef JFEED_PDG_EPDG_H_
#define JFEED_PDG_EPDG_H_

#include <memory>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr.h"
#include "graph/ids.h"
#include "javalang/ast.h"
#include "pdg/symbols.h"
#include "support/arena.h"
#include "support/result.h"

namespace jfeed::pdg {

/// Graph-node types of Definition 1. `Decl` is used only for method
/// parameters; local variable declarations with initializers are `Assign`
/// nodes (this matches the paper's Fig. 3, where `int even = 0` is an
/// assignment node).
enum class NodeType { kAssign, kBreak, kCall, kCond, kDecl, kReturn };

/// Edge types of Definition 2.
enum class EdgeType { kCtrl, kData };

const char* NodeTypeName(NodeType type);
const char* EdgeTypeName(EdgeType type);

/// Bundled allocation context for one submission's EPDGs: the bump arena
/// every node/edge/span lives in plus the symbol table interning variable
/// names. An Epdg either owns one privately (the default) or borrows a
/// pooled instance that a scheduler worker resets between submissions, so
/// steady-state EPDG construction performs near-zero allocator calls.
struct EpdgMemory {
  Arena arena;
  SymbolTable symbols;

  /// Invalidates every Epdg built on this memory.
  void Reset() {
    arena.Reset();
    symbols.Clear();
  }
};

/// Value view of one extended-PDG node. The EPDG stores nodes as parallel
/// arrays (structure-of-arrays); NodeAt() materializes this view, whose
/// spans and string_view point into the EPDG's arena. Variable sets are
/// spans of interned SymbolIds sorted by symbol *name*, so the matcher
/// iterates them in the same order the old std::set<std::string> gave.
struct Node {
  NodeType type = NodeType::kAssign;
  std::string_view content;  ///< Normalized Java expression (arena-backed).
  int line = 0;              ///< Source line (for feedback messages).
  /// Expression form of the content (declarations appear as assignments,
  /// returns as their value); null for nodes without one (break). Borrowed:
  /// statement expressions point into the parsed method's AST, synthesized
  /// forms are owned by the Epdg. Used by the AST matching backend.
  const java::Expr* ast = nullptr;
  std::span<const SymbolId> reads;   ///< Read vars, sorted by name.
  std::span<const SymbolId> writes;  ///< Written vars, sorted by name.
  const SymbolTable* symbols = nullptr;

  const std::string& NameOf(SymbolId id) const { return symbols->Name(id); }

  /// Calls fn(const std::string&) for every variable mentioned — the
  /// paper's Variables(c) = reads ∪ writes — in name order, each name once.
  /// The references are stable for the symbol table's lifetime.
  template <typename Fn>
  void ForEachVar(Fn&& fn) const {
    size_t r = 0, w = 0;
    while (r < reads.size() && w < writes.size()) {
      if (reads[r] == writes[w]) {
        fn(NameOf(reads[r]));
        ++r;
        ++w;
      } else if (NameOf(reads[r]) < NameOf(writes[w])) {
        fn(NameOf(reads[r]));
        ++r;
      } else {
        fn(NameOf(writes[w]));
        ++w;
      }
    }
    for (; r < reads.size(); ++r) fn(NameOf(reads[r]));
    for (; w < writes.size(); ++w) fn(NameOf(writes[w]));
  }

  // Set-materializing conveniences for tests and diagnostics; the hot path
  // uses the spans directly.
  std::set<std::string> ReadNames() const;
  std::set<std::string> WriteNames() const;
  std::set<std::string> VarNames() const;
};

/// The extended program dependence graph of one method (Definition 3),
/// stored as structure-of-arrays in a bump arena: parallel per-node arrays
/// (type/content/line/ast/var-span) plus a flat edge list that freezes into
/// a CSR adjacency on first HasEdge(). The matcher's innermost loops are
/// contiguous scans and integer compares over this storage.
///
/// Lifetime: node contents and var spans live in the EpdgMemory arena;
/// node `ast` pointers borrow the parsed method's AST. An Epdg must not
/// outlive either the memory it was built on or the CompilationUnit it was
/// built from.
class Epdg {
 public:
  struct Edge {
    graph::NodeId source;
    graph::NodeId target;
    EdgeType type;
  };

  /// Builds on `memory` when given (pooled, reset by the caller between
  /// submissions), otherwise self-owns a private EpdgMemory.
  explicit Epdg(std::string method_name = {}, EpdgMemory* memory = nullptr);

  Epdg(const Epdg&) = delete;
  Epdg& operator=(const Epdg&) = delete;
  Epdg(Epdg&&) = default;
  Epdg& operator=(Epdg&&) = default;

  const std::string& method_name() const { return method_name_; }

  size_t NodeCount() const { return types_.size(); }
  size_t EdgeCount() const { return edges_.size(); }

  Node NodeAt(graph::NodeId id) const;
  /// Type-only accessor for loops that don't need the full view.
  NodeType TypeAt(graph::NodeId id) const { return types_[id]; }

  /// All edges in insertion order.
  std::span<const Edge> edges() const { return {edges_.data(), edges_.size()}; }

  const SymbolTable& symbols() const { return mem_->symbols; }
  SymbolTable* mutable_symbols() const { return &mem_->symbols; }
  Arena* arena() const { return &mem_->arena; }

  /// One scan of the source node's CSR row (typically a handful of packed
  /// 32-bit entries): the innermost check of the matching engine
  /// (Definition 7 condition 2) and of the edge-existence constraints
  /// (Definition 9). Freezes the adjacency on first call after an edge
  /// mutation.
  bool HasEdge(graph::NodeId source, graph::NodeId target,
               EdgeType type) const {
    if (!frozen_) Freeze();
    uint32_t want = PackEdge(target, type);
    const uint32_t* it = out_.RowBegin(static_cast<uint32_t>(source));
    const uint32_t* end = out_.RowEnd(static_cast<uint32_t>(source));
    for (; it != end; ++it) {
      if (*it == want) return true;
    }
    return false;
  }

  /// Builds the CSR adjacency now instead of lazily on first HasEdge().
  /// A graph shared read-only across threads (a pinned method-cache entry)
  /// must be frozen once at publish time so concurrent HasEdge() calls are
  /// pure reads of immutable storage.
  void FreezeAdjacency() const {
    if (!frozen_) Freeze();
  }

  // --- Construction (append-only; used by the builder) ---------------------

  /// Appends a node; `content` is copied into the arena, the id spans into
  /// the node's private slice of the var pool.
  graph::NodeId AddNode(NodeType type, std::string_view content, int line,
                        const java::Expr* ast, std::span<const SymbolId> reads,
                        std::span<const SymbolId> writes);

  /// Appends the edge unless an identical (source, target, type) triple
  /// exists — a linear scan; intro-method graphs have tens of edges, so
  /// this replaces the old hash-set probe plus dual adjacency insert with
  /// one append into one array.
  void AddEdge(graph::NodeId source, graph::NodeId target, EdgeType type);

  /// Transfers ownership of a synthesized AST form (parameter names,
  /// declaration assignments) so node `ast` pointers stay valid.
  const java::Expr* KeepAst(java::ExprPtr ast);

  // --- Reporting ------------------------------------------------------------

  /// Number of edges of the given type (testing / reporting convenience).
  size_t CountEdges(EdgeType type) const;

  /// GraphViz rendering; Data edges solid, Ctrl edges dashed (as in Fig. 3).
  std::string ToDot() const;

 private:
  /// Packed CSR entry: neighbor id in the high bits, edge type in bit 0.
  static uint32_t PackEdge(graph::NodeId neighbor, EdgeType type) {
    return (static_cast<uint32_t>(neighbor) << 1) |
           static_cast<uint32_t>(type);
  }

  void Freeze() const;

  /// Offsets of one node's slice of var_pool_: reads first, then writes.
  struct VarSpan {
    uint32_t begin = 0;
    uint16_t read_count = 0;
    uint16_t write_count = 0;
  };

  std::string method_name_;
  std::unique_ptr<EpdgMemory> owned_mem_;  ///< Null when pooled.
  EpdgMemory* mem_ = nullptr;

  // Parallel per-node arrays.
  ArenaVec<NodeType> types_;
  ArenaVec<std::string_view> contents_;
  ArenaVec<int> lines_;
  ArenaVec<const java::Expr*> asts_;
  ArenaVec<VarSpan> var_spans_;
  ArenaVec<SymbolId> var_pool_;  ///< Concatenated read/write id slices.

  ArenaVec<Edge> edges_;  ///< Insertion order; source of truth.
  /// Synthesized expressions whose destructors must run (their string
  /// payloads are heap-backed even when the node structs sit in an arena).
  std::vector<java::ExprPtr> owned_asts_;

  mutable graph::Csr out_;        ///< Packed out-adjacency, built by Freeze.
  mutable bool frozen_ = false;
};

/// Builds the extended program dependence graph of `method` following the
/// conventions of Sec. III-A:
///   * Ctrl edges run from a Cond node to the nodes it *immediately*
///     controls (transitive Ctrl edges are never created).
///   * Data edges are computed by reaching definitions on an acyclic
///     one-iteration interpretation of the control flow: loop bodies execute
///     exactly once, conditions are assumed fulfilled (no bypass paths), and
///     loops never iterate twice (no back edges) — the Bhattacharjee & Jamil
///     convention the paper adopts.
///   * Array-element stores are weak updates: they add a definition of the
///     array variable without killing previous definitions.
///
/// The result borrows `method`'s AST (see Epdg lifetime note) and builds on
/// `memory` when given.
Result<Epdg> BuildEpdg(const java::Method& method,
                       EpdgMemory* memory = nullptr);

/// Builds the EPDG of every method in `unit`, in declaration order, all on
/// the same `memory` when given.
Result<std::vector<Epdg>> BuildAllEpdgs(const java::CompilationUnit& unit,
                                        EpdgMemory* memory = nullptr);

}  // namespace jfeed::pdg

#endif  // JFEED_PDG_EPDG_H_
