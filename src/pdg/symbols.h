#ifndef JFEED_PDG_SYMBOLS_H_
#define JFEED_PDG_SYMBOLS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace jfeed::pdg {

/// Dense 32-bit handle for an interned variable name. Ids are assigned in
/// first-intern order and are only meaningful relative to the SymbolTable
/// that produced them.
using SymbolId = uint32_t;

inline constexpr SymbolId kInvalidSymbol = UINT32_MAX;

/// Interns variable names to dense SymbolIds for one submission's EPDGs.
/// Node read/write sets become small spans of ids, def environments become
/// arrays indexed by id, and name comparisons become integer compares.
///
/// Name(id) returns a reference that stays valid for the table's lifetime
/// (until Clear()): names live in a deque, so growth never moves them.
/// Matcher-side code holds `const std::string*` into the table across a
/// whole match run, which is why the stability guarantee is part of the
/// contract.
class SymbolTable {
 public:
  /// Returns the id for `name`, interning it on first sight.
  SymbolId Intern(std::string_view name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    SymbolId id = static_cast<SymbolId>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name`, or kInvalidSymbol if never interned.
  SymbolId Find(std::string_view name) const {
    auto it = index_.find(name);
    return it == index_.end() ? kInvalidSymbol : it->second;
  }

  /// The interned name; the reference is stable until Clear().
  const std::string& Name(SymbolId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

  /// Forgets all symbols. Ids from before the call are invalid; the hash
  /// table keeps its buckets, so re-interning a similar working set does
  /// not reallocate it.
  void Clear() {
    index_.clear();
    names_.clear();
  }

 private:
  std::deque<std::string> names_;  ///< Id -> name; deque for stable refs.
  /// Keys view into names_ entries, which never move.
  std::unordered_map<std::string_view, SymbolId> index_;
};

}  // namespace jfeed::pdg

#endif  // JFEED_PDG_SYMBOLS_H_
