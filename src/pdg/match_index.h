#ifndef JFEED_PDG_MATCH_INDEX_H_
#define JFEED_PDG_MATCH_INDEX_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "pdg/epdg.h"
#include "support/arena.h"

namespace jfeed::pdg {

/// Degree signature of one node: how many incident edges it has per
/// (direction, edge type), and per (direction, edge type, neighbor node
/// type). The matcher prunes a candidate graph node v for pattern node u
/// unless sig(v) covers sig(u) component-wise — a *necessary* condition for
/// v to appear in any full embedding (Definition 7 maps u's incident
/// pattern edges to distinct graph edges of the same direction and type,
/// and typed pattern endpoints to type-compatible neighbors), so pruning on
/// it never removes a real embedding.
struct DegreeSignature {
  static constexpr int kDirections = 2;  ///< 0 = out, 1 = in.
  static constexpr int kEdgeTypes = 2;   ///< EdgeType cast to int.
  static constexpr int kNodeTypes = 6;   ///< NodeType cast to int.

  /// total[dir][etype]: incident edge count regardless of neighbor type.
  uint16_t total[kDirections][kEdgeTypes] = {};
  /// typed[dir][etype][ntype]: incident edges whose neighbor has `ntype`.
  /// On the pattern side only *typed* endpoints contribute (an untyped
  /// endpoint constrains `total` alone).
  uint16_t typed[kDirections][kEdgeTypes][kNodeTypes] = {};

  void AddEdge(int dir, int etype, int neighbor_type) {
    ++total[dir][etype];
    if (neighbor_type >= 0) ++typed[dir][etype][neighbor_type];
  }

  /// True when this signature has at least as many edges as `need` in every
  /// component — i.e. a node with this signature *could* host `need`.
  bool Covers(const DegreeSignature& need) const {
    for (int d = 0; d < kDirections; ++d) {
      for (int e = 0; e < kEdgeTypes; ++e) {
        if (total[d][e] < need.total[d][e]) return false;
        for (int t = 0; t < kNodeTypes; ++t) {
          if (typed[d][e][t] < need.typed[d][e][t]) return false;
        }
      }
    }
    return true;
  }
};

/// Immutable per-EPDG acceleration structure for Algorithm 1, built once
/// per graph and shared across every pattern, variant, and method-candidate
/// evaluation of a submission (Sec. IV: "the performance depends on the
/// size of the search space and the processing order of the pattern
/// nodes"). It replaces the per-pattern O(|P|·|G|) type scan with bucket
/// lookups and funds signature pruning of candidates before backtracking.
class MatchIndex {
 public:
  MatchIndex() = default;
  /// Builds the index over `epdg`. With an arena the node arrays and
  /// signature table live there (two bump allocations, freed wholesale by
  /// the arena's next Reset); without one they live in owned heap vectors.
  /// Either way the index must not outlive the EPDG — or, when arena-backed,
  /// the arena's next Reset().
  explicit MatchIndex(const Epdg& epdg, Arena* arena = nullptr);

  // The accessor spans point into owned storage, so copying would alias the
  // source's buffers; moving transfers them.
  MatchIndex(const MatchIndex&) = delete;
  MatchIndex& operator=(const MatchIndex&) = delete;
  MatchIndex(MatchIndex&&) = default;
  MatchIndex& operator=(MatchIndex&&) = default;

  /// Graph nodes of `type`, ascending id (the same order the legacy type
  /// scan produced, which keeps engines' search order aligned).
  std::span<const graph::NodeId> Bucket(NodeType type) const {
    return buckets_[static_cast<int>(type)];
  }
  /// All graph nodes, ascending id — the candidate set of untyped pattern
  /// nodes.
  std::span<const graph::NodeId> AllNodes() const { return all_nodes_; }

  const DegreeSignature& Signature(graph::NodeId id) const {
    return signatures_[id];
  }

  size_t NodeCount() const { return all_nodes_.size(); }

 private:
  // One flat id array holds AllNodes() (first half) and the type-partitioned
  // node list the buckets slice (second half); signatures are a parallel
  // table indexed by node id. Both live in the arena when one is supplied,
  // otherwise in the owned_* vectors below.
  std::array<std::span<const graph::NodeId>, DegreeSignature::kNodeTypes>
      buckets_;
  std::span<const graph::NodeId> all_nodes_;
  std::span<const DegreeSignature> signatures_;
  std::vector<graph::NodeId> owned_ids_;
  std::vector<DegreeSignature> owned_signatures_;
};

}  // namespace jfeed::pdg

#endif  // JFEED_PDG_MATCH_INDEX_H_
