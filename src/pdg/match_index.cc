#include "pdg/match_index.h"

namespace jfeed::pdg {

MatchIndex::MatchIndex(const Epdg& epdg) {
  const size_t n = epdg.NodeCount();
  all_nodes_.reserve(n);
  signatures_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    auto id = static_cast<graph::NodeId>(i);
    all_nodes_.push_back(id);
    buckets_[static_cast<int>(epdg.NodeAt(id).type)].push_back(id);
  }
  const Epdg::Graph& g = epdg.graph();
  for (size_t i = 0; i < g.EdgeCount(); ++i) {
    const auto& edge = g.GetEdge(static_cast<graph::EdgeId>(i));
    int etype = static_cast<int>(edge.data);
    signatures_[edge.source].AddEdge(
        /*dir=*/0, etype, static_cast<int>(epdg.NodeAt(edge.target).type));
    signatures_[edge.target].AddEdge(
        /*dir=*/1, etype, static_cast<int>(epdg.NodeAt(edge.source).type));
  }
}

}  // namespace jfeed::pdg
