#include "pdg/match_index.h"

#include <chrono>
#include <cstring>

#include "obs/metrics.h"

namespace jfeed::pdg {

MatchIndex::MatchIndex(const Epdg& epdg, Arena* arena) {
  // Build-time distribution: the index is the per-submission fixed cost the
  // indexed engine pays to make every subsequent pattern/variant match
  // cheap, so its build time is a first-class monitoring signal.
  auto& registry = obs::Registry::Global();
  static obs::Histogram* build_us = registry.GetHistogram(
      "jfeed_match_index_build_us",
      "MatchIndex construction wall time per EPDG (microseconds)");
  static obs::Histogram* index_nodes = registry.GetHistogram(
      "jfeed_match_index_nodes", "EPDG nodes indexed per MatchIndex build");
  const bool metered = registry.enabled();
  const auto start =
      metered ? std::chrono::steady_clock::now()
              : std::chrono::steady_clock::time_point();

  const size_t n = epdg.NodeCount();
  graph::NodeId* ids;
  DegreeSignature* sigs;
  if (arena != nullptr) {
    ids = arena->AllocateArray<graph::NodeId>(2 * n);
    sigs = arena->AllocateArray<DegreeSignature>(n);
    std::memset(sigs, 0, n * sizeof(DegreeSignature));
  } else {
    owned_ids_.resize(2 * n);
    owned_signatures_.resize(n);
    ids = owned_ids_.data();
    sigs = owned_signatures_.data();
  }
  // Counting sort by node type: `ids` holds the ascending all-nodes list in
  // its first half and the type-partitioned list the buckets slice in its
  // second half.
  graph::NodeId* all = ids;
  graph::NodeId* by_type = ids + n;
  size_t counts[DegreeSignature::kNodeTypes] = {};
  for (size_t i = 0; i < n; ++i) {
    auto id = static_cast<graph::NodeId>(i);
    all[i] = id;
    ++counts[static_cast<int>(epdg.TypeAt(id))];
  }
  size_t cursor[DegreeSignature::kNodeTypes];
  size_t offset = 0;
  for (int t = 0; t < DegreeSignature::kNodeTypes; ++t) {
    cursor[t] = offset;
    buckets_[t] = {by_type + offset, counts[t]};
    offset += counts[t];
  }
  for (size_t i = 0; i < n; ++i) {
    auto id = static_cast<graph::NodeId>(i);
    by_type[cursor[static_cast<int>(epdg.TypeAt(id))]++] = id;
  }
  all_nodes_ = {all, n};
  signatures_ = {sigs, n};
  for (const Epdg::Edge& edge : epdg.edges()) {
    int etype = static_cast<int>(edge.type);
    sigs[edge.source].AddEdge(
        /*dir=*/0, etype, static_cast<int>(epdg.TypeAt(edge.target)));
    sigs[edge.target].AddEdge(
        /*dir=*/1, etype, static_cast<int>(epdg.TypeAt(edge.source)));
  }

  if (metered) {
    build_us->Record(std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count());
    index_nodes->Record(static_cast<int64_t>(n));
  }
}

}  // namespace jfeed::pdg
