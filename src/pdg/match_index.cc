#include "pdg/match_index.h"

#include <chrono>

#include "obs/metrics.h"

namespace jfeed::pdg {

MatchIndex::MatchIndex(const Epdg& epdg) {
  // Build-time distribution: the index is the per-submission fixed cost the
  // indexed engine pays to make every subsequent pattern/variant match
  // cheap, so its build time is a first-class monitoring signal.
  auto& registry = obs::Registry::Global();
  static obs::Histogram* build_us = registry.GetHistogram(
      "jfeed_match_index_build_us",
      "MatchIndex construction wall time per EPDG (microseconds)");
  static obs::Histogram* index_nodes = registry.GetHistogram(
      "jfeed_match_index_nodes", "EPDG nodes indexed per MatchIndex build");
  const bool metered = registry.enabled();
  const auto start =
      metered ? std::chrono::steady_clock::now()
              : std::chrono::steady_clock::time_point();

  const size_t n = epdg.NodeCount();
  all_nodes_.reserve(n);
  signatures_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    auto id = static_cast<graph::NodeId>(i);
    all_nodes_.push_back(id);
    buckets_[static_cast<int>(epdg.NodeAt(id).type)].push_back(id);
  }
  const Epdg::Graph& g = epdg.graph();
  for (size_t i = 0; i < g.EdgeCount(); ++i) {
    const auto& edge = g.GetEdge(static_cast<graph::EdgeId>(i));
    int etype = static_cast<int>(edge.data);
    signatures_[edge.source].AddEdge(
        /*dir=*/0, etype, static_cast<int>(epdg.NodeAt(edge.target).type));
    signatures_[edge.target].AddEdge(
        /*dir=*/1, etype, static_cast<int>(epdg.NodeAt(edge.source).type));
  }

  if (metered) {
    build_us->Record(std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count());
    index_nodes->Record(static_cast<int64_t>(n));
  }
}

}  // namespace jfeed::pdg
