#!/usr/bin/env python3
"""CI regression gate for the match engine's deterministic step counts.

Compares a freshly generated BENCH_matching.json against the checked-in
baseline and fails (exit 1) when the indexed engine's backtracking work
regressed by more than the threshold. Only deterministic counters are
compared — wall times depend on the runner and are ignored.

Usage: compare_bench.py BASELINE CURRENT [--threshold 0.10]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "jfeed-bench-matching-v1":
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return data


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional step regression (default 0.10)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    if not current.get("equivalent", False):
        sys.exit("FAIL: current run reports engine inequivalence")

    failures = []

    def check(label, base_steps, cur_steps):
        limit = base_steps * (1.0 + args.threshold)
        status = "ok"
        if cur_steps > limit:
            status = f"REGRESSION (limit {limit:.0f})"
            failures.append(label)
        print(f"{label:40s} baseline {base_steps:8d}  current {cur_steps:8d}  {status}")

    check("totals.indexed_steps",
          baseline["totals"]["indexed_steps"],
          current["totals"]["indexed_steps"])
    check("ablation.indexed_steps",
          baseline["ablation"]["indexed_steps"],
          current["ablation"]["indexed_steps"])

    base_by_id = {a["id"]: a for a in baseline["assignments"]}
    for a in current["assignments"]:
        b = base_by_id.get(a["id"])
        if b is None:
            print(f"{a['id']:40s} new assignment, no baseline — skipped")
            continue
        check(f"assignment {a['id']}",
              b["indexed"]["steps"], a["indexed"]["steps"])

    if failures:
        print(f"\nFAIL: step regression beyond {args.threshold:.0%} in: "
              + ", ".join(failures))
        print("If the regression is intended (pattern/KB change), regenerate "
              "bench/baselines/BENCH_matching.json and commit it.")
        return 1
    print("\nOK: no step regressions beyond "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
