#!/usr/bin/env python3
"""CI regression gate for the deterministic benchmark reports.

Four report schemas are understood, dispatched on the baseline's "schema"
field:

  jfeed-bench-matching-v1   (bench_matching) — the indexed match engine's
      backtracking step counts and the pooled hot path's heap allocations
      per submission; current may exceed baseline by at most --threshold
      (wall times are runner-dependent and ignored).
  jfeed-bench-table1-v1     (bench_table1) — the Table I coverage counters
      (space, sampled, evaluated, parse failures, discrepancies per
      assignment); deterministic for a fixed --samples, so they must match
      the baseline exactly. Wall times are reported for trend only.
  jfeed-bench-loadgen-v1    (jfeed_loadgen) — the deadline-spike load
      replay against a multi-tenant jfeedd. Hard gates: transport errors
      must be zero, every scheduled submission sent, and the overall shed
      rate may not exceed the baseline's by more than --shed-tolerance.
      p99 latency is trend-gated: it may exceed the baseline by at most
      --p99-threshold (generous by default — shared CI runners jitter).
      Per-assignment breakdowns are printed for trend only.
  jfeed-bench-resubmission-v1 (bench_resubmission) — incremental grading
      over seeded resubmission chains. The current run must report
      cache-on/cache-off feedback equivalence; the method counters
      (methods_total/reused/regraded, partial_hits) are deterministic for
      a fixed config and must match the baseline exactly; the partial-hit
      rate must clear an absolute floor (--partial-hit-floor); and the
      wall-time speedup and allocation ratio may regress by at most
      --threshold versus the baseline. Per-assignment lines are printed
      for trend only.

A malformed or schema-drifted input fails with a one-line diagnostic naming
the file and the missing or wrongly-typed key (exit 1), never a traceback
— a valid-JSON baseline carrying "100" where 100 belongs is drift too: CI
log readers
should see "what drifted", not a stack dump. In particular, when a baseline
exists but the candidate JSON does not carry the baseline's benchmark block
(wrong or missing schema), the gate fails with one line naming both files
and both schemas. `--update-baseline` copies the current report over the
baseline file instead of comparing — the documented workflow after an
intended pattern/KB change. A baseline that does not exist yet (a schema
whose block was never checked in, e.g. a brand-new bench) is created,
parent directories included, rather than failing; overwriting an existing
baseline of a *different* schema is refused, since that is nearly always a
wrong-file mistake.

Usage: compare_bench.py BASELINE CURRENT [--threshold 0.10]
       compare_bench.py BASELINE CURRENT --update-baseline
"""

import argparse
import json
import os
import shutil
import sys

KNOWN_SCHEMAS = ("jfeed-bench-matching-v1", "jfeed-bench-table1-v1",
                 "jfeed-bench-loadgen-v1", "jfeed-bench-resubmission-v1")


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as err:
        sys.exit(f"FAIL: cannot read {path}: {err.strerror}")
    except json.JSONDecodeError as err:
        sys.exit(f"FAIL: {path} is not valid JSON: {err}")
    if data.get("schema") not in KNOWN_SCHEMAS:
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r} "
                 f"(known: {', '.join(KNOWN_SCHEMAS)})")
    return data


def lookup(data, path, dotted):
    """Walks `dotted` ("totals.indexed_steps") through nested dicts; exits
    with a clear message naming the file and key when a level is missing —
    a baseline generated before a schema addition must fail readably."""
    node = data
    walked = []
    for key in dotted.split("."):
        walked.append(key)
        if not isinstance(node, dict) or key not in node:
            sys.exit(
                f"FAIL: {path} is missing key '{'.'.join(walked)}' "
                f"(schema drift — regenerate the file, or run with "
                f"--update-baseline after an intended change)")
        node = node[key]
    return node


def lookup_number(data, path, dotted):
    """lookup() plus a type gate: a baseline hand-edited (or produced by a
    half-migrated bench tool) can carry the right keys with string values,
    and `"100" * 1.1` is a traceback, not a diagnostic."""
    value = lookup(data, path, dotted)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        sys.exit(f"FAIL: {path} key '{dotted}' should be a number but is "
                 f"{type(value).__name__} {value!r} (schema drift — "
                 f"regenerate the file)")
    return value


def lookup_list(data, path, dotted):
    value = lookup(data, path, dotted)
    if not isinstance(value, list):
        sys.exit(f"FAIL: {path} key '{dotted}' should be a list but is "
                 f"{type(value).__name__} (schema drift — regenerate the "
                 f"file)")
    return value


def assignments_by_id(data, path):
    by_id = {}
    for a in lookup_list(data, path, "assignments"):
        if not isinstance(a, dict) or "id" not in a:
            sys.exit(f"FAIL: {path} has an assignment entry without an "
                     f"'id' (schema drift — regenerate the file)")
        by_id[a["id"]] = a
    return by_id


def compare_matching(baseline, current, args):
    """Step-count and allocation gate: current may exceed baseline by
    --threshold. Both counters are deterministic — backtracking steps by
    construction, allocations because the pooled hot path always performs
    the same sequence of operator-new calls for a given submission."""
    if not current.get("equivalent", False):
        sys.exit("FAIL: current run reports engine inequivalence")

    failures = []

    def check(label, base_count, cur_count):
        limit = base_count * (1.0 + args.threshold)
        status = "ok"
        if cur_count > limit:
            status = f"REGRESSION (limit {limit:.0f})"
            failures.append(label)
        print(f"{label:56s} baseline {base_count:8d}  "
              f"current {cur_count:8d}  {status}")

    for dotted in ("totals.indexed_steps", "ablation.indexed_steps",
                   "totals.allocs_per_submission"):
        check(dotted,
              lookup_number(baseline, args.baseline, dotted),
              lookup_number(current, args.current, dotted))

    base_by_id = assignments_by_id(baseline, args.baseline)
    for aid, a in assignments_by_id(current, args.current).items():
        b = base_by_id.get(aid)
        if b is None:
            print(f"{aid:56s} new assignment, no baseline — skipped")
            continue
        check(f"assignment {aid} indexed.steps",
              lookup_number(b, args.baseline, "indexed.steps"),
              lookup_number(a, args.current, "indexed.steps"))
        check(f"assignment {aid} allocs_per_submission",
              lookup_number(b, args.baseline, "allocs_per_submission"),
              lookup_number(a, args.current, "allocs_per_submission"))

    if failures:
        print(f"\nFAIL: step/allocation regression beyond "
              f"{args.threshold:.0%} in: " + ", ".join(failures))
        print("If the regression is intended (pattern/KB change), rerun "
              "with --update-baseline (or regenerate "
              "bench/baselines/BENCH_matching.json) and commit it.")
        return 1
    print("\nOK: no step or allocation regressions beyond "
          f"{args.threshold:.0%} of baseline")
    return 0


# Per-assignment Table I counters that are deterministic for a fixed
# --samples and must therefore match the baseline exactly.
TABLE1_EXACT_FIELDS = ("space", "patterns", "constraints", "sampled",
                       "evaluated", "parse_failures", "discrepancies")


def compare_table1(baseline, current, args):
    """Exact-equality gate over the deterministic Table I counters."""
    base_samples = lookup_number(baseline, args.baseline, "samples")
    cur_samples = lookup_number(current, args.current, "samples")
    if base_samples != cur_samples:
        sys.exit(f"FAIL: {args.current} was generated with --samples "
                 f"{cur_samples} but the baseline used {base_samples} — "
                 f"the coverage counters are not comparable; rerun "
                 f"bench_table1 with --samples {base_samples}")

    failures = []
    base_by_id = assignments_by_id(baseline, args.baseline)
    cur_by_id = assignments_by_id(current, args.current)
    for aid, b in base_by_id.items():
        a = cur_by_id.get(aid)
        if a is None:
            print(f"{aid:40s} MISSING from current report")
            failures.append(aid)
            continue
        diffs = []
        for field in TABLE1_EXACT_FIELDS:
            base_value = lookup(b, args.baseline, field)
            cur_value = lookup(a, args.current, field)
            if base_value != cur_value:
                diffs.append(f"{field} {base_value} -> {cur_value}")
        wall = a.get("wall_ms", 0.0)
        if isinstance(wall, bool) or not isinstance(wall, (int, float)):
            sys.exit(f"FAIL: {args.current} assignment '{aid}' key "
                     f"'wall_ms' should be a number but is "
                     f"{type(wall).__name__} {wall!r} (schema drift — "
                     f"regenerate the file)")
        if diffs:
            print(f"{aid:40s} DRIFT: {'; '.join(diffs)}")
            failures.append(aid)
        else:
            print(f"{aid:40s} ok  (wall {wall:.1f} ms, trend only)")
    for aid in cur_by_id:
        if aid not in base_by_id:
            print(f"{aid:40s} new assignment, no baseline — skipped")

    if failures:
        print(f"\nFAIL: Table I coverage drift in: {', '.join(failures)}")
        print("If the change is intended (pattern/KB/generator change), "
              "regenerate bench/baselines/BENCH_table1.json with "
              "--update-baseline and commit it.")
        return 1
    print("\nOK: Table I coverage counters match the baseline exactly")
    return 0


# Workload knobs that make two loadgen runs comparable: same traffic
# schedule (submissions, seed, spike shape) at the same replay speed.
LOADGEN_CONFIG_FIELDS = ("submissions", "seed", "idle_ms", "spike_ms",
                         "time_scale")


def compare_loadgen(baseline, current, args):
    """Load-replay gate: zero errors, full delivery, bounded shed rate,
    trend-gated p99 latency."""
    for field in LOADGEN_CONFIG_FIELDS:
        base_value = lookup_number(baseline, args.baseline,
                                   f"config.{field}")
        cur_value = lookup_number(current, args.current, f"config.{field}")
        if base_value != cur_value:
            sys.exit(f"FAIL: {args.current} was generated with --{field} "
                     f"{cur_value} but the baseline used {base_value} — "
                     f"the runs replay different workloads and are not "
                     f"comparable; rerun jfeed_loadgen to match")

    failures = []

    errors = lookup_number(current, args.current, "totals.errors")
    if errors != 0:
        print(f"{'totals.errors':40s} {errors} transport/HTTP errors "
              f"(must be 0)")
        failures.append("errors")

    base_sent = lookup_number(baseline, args.baseline, "totals.sent")
    cur_sent = lookup_number(current, args.current, "totals.sent")
    if cur_sent != base_sent:
        print(f"{'totals.sent':40s} baseline {base_sent}  current "
              f"{cur_sent}  INCOMPLETE REPLAY")
        failures.append("sent")

    base_shed_rate = lookup_number(baseline, args.baseline,
                                   "totals.shed_rate")
    cur_shed_rate = lookup_number(current, args.current, "totals.shed_rate")
    shed_limit = base_shed_rate + args.shed_tolerance
    status = "ok"
    if cur_shed_rate > shed_limit:
        status = f"REGRESSION (limit {shed_limit:.3f})"
        failures.append("shed_rate")
    print(f"{'totals.shed_rate':40s} baseline {base_shed_rate:8.3f}  "
          f"current {cur_shed_rate:8.3f}  {status}")

    base_p99 = lookup_number(baseline, args.baseline,
                             "totals.latency_us.p99")
    cur_p99 = lookup_number(current, args.current, "totals.latency_us.p99")
    p99_limit = base_p99 * (1.0 + args.p99_threshold)
    status = "ok"
    if cur_p99 > p99_limit:
        status = f"REGRESSION (limit {p99_limit:.0f}us)"
        failures.append("p99")
    print(f"{'totals.latency_us.p99':40s} baseline {base_p99:8.0f}  "
          f"current {cur_p99:8.0f}  {status}")

    # Per-assignment breakdowns: printed so a drift is attributable to one
    # tenant, but gated only in aggregate — per-tenant tails on a shared
    # runner are too noisy to block a merge on.
    base_by_id = assignments_by_id(baseline, args.baseline)
    for aid, a in assignments_by_id(current, args.current).items():
        cur_a_p99 = lookup_number(a, args.current, "latency_us.p99")
        cur_a_shed = lookup_number(a, args.current, "shed_rate")
        b = base_by_id.get(aid)
        if b is None:
            print(f"assignment {aid:29s} new assignment, no baseline — "
                  f"trend only")
            continue
        base_a_p99 = lookup_number(b, args.baseline, "latency_us.p99")
        base_a_shed = lookup_number(b, args.baseline, "shed_rate")
        print(f"assignment {aid:29s} p99 {base_a_p99:8.0f} -> "
              f"{cur_a_p99:8.0f}us  shed {base_a_shed:.3f} -> "
              f"{cur_a_shed:.3f}  (trend only)")

    if failures:
        print(f"\nFAIL: loadgen regression in: {', '.join(failures)} "
              f"(p99 threshold {args.p99_threshold:.0%}, shed tolerance "
              f"{args.shed_tolerance:+.3f})")
        print("If the change is intended (scheduler/admission change), "
              "regenerate bench/baselines/BENCH_loadgen.json with "
              "--update-baseline and commit it.")
        return 1
    print(f"\nOK: errors 0, replay complete, shed rate within "
          f"{args.shed_tolerance:+.3f} and p99 within "
          f"{args.p99_threshold:.0%} of baseline")
    return 0


# Workload knobs that make two resubmission runs comparable: same seeded
# chains, same repetition count.
RESUBMISSION_CONFIG_FIELDS = ("steps", "reps", "seed", "assignments")

# Chain-derived counters that are deterministic for a fixed config and must
# therefore match the baseline exactly.
RESUBMISSION_EXACT_FIELDS = ("submissions", "resubmissions",
                             "methods_total", "methods_reused",
                             "methods_regraded", "partial_hits")


def compare_resubmission(baseline, current, args):
    """Incremental-grading gate: feedback equivalence, exact method
    counters, an absolute partial-hit-rate floor, and trend gates on the
    wall-time speedup and allocation ratio."""
    for field in RESUBMISSION_CONFIG_FIELDS:
        base_value = lookup_number(baseline, args.baseline,
                                   f"config.{field}")
        cur_value = lookup_number(current, args.current, f"config.{field}")
        if base_value != cur_value:
            sys.exit(f"FAIL: {args.current} was generated with --{field} "
                     f"{cur_value} but the baseline used {base_value} — "
                     f"the runs grade different chains and are not "
                     f"comparable; rerun bench_resubmission to match")

    if not lookup(current, args.current, "totals.equivalent"):
        sys.exit("FAIL: current run reports feedback inequivalence — the "
                 "method cache changed grading output")

    failures = []

    for field in RESUBMISSION_EXACT_FIELDS:
        dotted = f"totals.{field}"
        base_value = lookup_number(baseline, args.baseline, dotted)
        cur_value = lookup_number(current, args.current, dotted)
        status = "ok"
        if base_value != cur_value:
            status = f"DRIFT (baseline {base_value})"
            failures.append(field)
        print(f"{dotted:40s} baseline {base_value:10g}  "
              f"current {cur_value:10g}  {status}")

    rate = lookup_number(current, args.current, "totals.partial_hit_rate")
    status = "ok"
    if rate < args.partial_hit_floor:
        status = f"BELOW FLOOR ({args.partial_hit_floor:.2f})"
        failures.append("partial_hit_rate")
    print(f"{'totals.partial_hit_rate':40s} floor "
          f"{args.partial_hit_floor:11.2f}  current {rate:10.3f}  {status}")

    base_speedup = lookup_number(baseline, args.baseline, "totals.speedup")
    cur_speedup = lookup_number(current, args.current, "totals.speedup")
    limit = base_speedup * (1.0 - args.threshold)
    status = "ok"
    if cur_speedup < limit:
        status = f"REGRESSION (limit {limit:.2f}x)"
        failures.append("speedup")
    print(f"{'totals.speedup':40s} baseline {base_speedup:9.2f}x  "
          f"current {cur_speedup:9.2f}x  {status}")

    base_alloc = lookup_number(baseline, args.baseline,
                               "totals.alloc_ratio")
    cur_alloc = lookup_number(current, args.current, "totals.alloc_ratio")
    limit = base_alloc * (1.0 + args.threshold)
    status = "ok"
    if cur_alloc > limit:
        status = f"REGRESSION (limit {limit:.3f})"
        failures.append("alloc_ratio")
    print(f"{'totals.alloc_ratio':40s} baseline {base_alloc:10.3f}  "
          f"current {cur_alloc:10.3f}  {status}")

    # Per-assignment lines: attribution only. Per-chain wall times on a
    # shared runner are too noisy to block a merge on.
    base_by_id = assignments_by_id(baseline, args.baseline)
    for aid, a in assignments_by_id(current, args.current).items():
        cur_a_rate = lookup_number(a, args.current, "partial_hit_rate")
        cur_a_speedup = lookup_number(a, args.current, "speedup")
        b = base_by_id.get(aid)
        if b is None:
            print(f"assignment {aid:29s} new assignment, no baseline — "
                  f"trend only")
            continue
        base_a_rate = lookup_number(b, args.baseline, "partial_hit_rate")
        base_a_speedup = lookup_number(b, args.baseline, "speedup")
        print(f"assignment {aid:29s} reuse {base_a_rate:.3f} -> "
              f"{cur_a_rate:.3f}  speedup {base_a_speedup:.2f}x -> "
              f"{cur_a_speedup:.2f}x  (trend only)")

    if failures:
        print(f"\nFAIL: resubmission regression in: {', '.join(failures)} "
              f"(ratio threshold {args.threshold:.0%}, partial-hit floor "
              f"{args.partial_hit_floor:.2f})")
        print("If the change is intended (cache/chain-generator change), "
              "regenerate bench/baselines/BENCH_resubmission.json with "
              "--update-baseline and commit it.")
        return 1
    print(f"\nOK: feedback equivalent, method counters match exactly, "
          f"partial-hit rate ≥ {args.partial_hit_floor:.2f}, speedup and "
          f"alloc ratio within {args.threshold:.0%} of baseline")
    return 0


def validate_for_update(current, path):
    """Schema-specific sanity before a report may become the baseline."""
    if current["schema"] == "jfeed-bench-matching-v1":
        if not current.get("equivalent", False):
            sys.exit("FAIL: refusing to update baseline from a run that "
                     "reports engine inequivalence")
        lookup_number(current, path, "totals.indexed_steps")
        lookup_number(current, path, "ablation.indexed_steps")
        lookup_number(current, path, "totals.allocs_per_submission")
        for a in assignments_by_id(current, path).values():
            lookup_number(a, path, "allocs_per_submission")
    elif current["schema"] == "jfeed-bench-loadgen-v1":
        if lookup_number(current, path, "totals.errors") != 0:
            sys.exit("FAIL: refusing to update baseline from a loadgen run "
                     "with transport/HTTP errors")
        for field in LOADGEN_CONFIG_FIELDS:
            lookup_number(current, path, f"config.{field}")
        for dotted in ("totals.sent", "totals.ok", "totals.shed",
                       "totals.shed_rate", "totals.latency_us.p99"):
            lookup_number(current, path, dotted)
        for a in assignments_by_id(current, path).values():
            lookup_number(a, path, "shed_rate")
            lookup_number(a, path, "latency_us.p99")
    elif current["schema"] == "jfeed-bench-resubmission-v1":
        if not lookup(current, path, "totals.equivalent"):
            sys.exit("FAIL: refusing to update baseline from a run that "
                     "reports feedback inequivalence")
        for field in RESUBMISSION_CONFIG_FIELDS:
            lookup_number(current, path, f"config.{field}")
        for field in RESUBMISSION_EXACT_FIELDS:
            lookup_number(current, path, f"totals.{field}")
        for dotted in ("totals.partial_hit_rate", "totals.speedup",
                       "totals.alloc_ratio"):
            lookup_number(current, path, dotted)
        for a in assignments_by_id(current, path).values():
            lookup_number(a, path, "partial_hit_rate")
            lookup_number(a, path, "speedup")
    else:
        lookup_number(current, path, "samples")
        for a in assignments_by_id(current, path).values():
            for field in TABLE1_EXACT_FIELDS:
                lookup_number(a, path, field)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional step regression for the "
                             "matching schema (default 0.10)")
    parser.add_argument("--p99-threshold", type=float, default=2.0,
                        help="allowed fractional p99 latency regression "
                             "for the loadgen schema (default 2.0 — 3x "
                             "baseline; shared runners jitter)")
    parser.add_argument("--shed-tolerance", type=float, default=0.10,
                        help="allowed absolute shed-rate increase over "
                             "baseline for the loadgen schema "
                             "(default 0.10)")
    parser.add_argument("--partial-hit-floor", type=float, default=0.60,
                        help="minimum acceptable totals.partial_hit_rate "
                             "for the resubmission schema (default 0.60, "
                             "the incremental-grading acceptance floor)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="copy CURRENT over BASELINE instead of "
                             "comparing (after an intended pattern/KB "
                             "change); creates the baseline if its schema "
                             "has no checked-in block yet")
    args = parser.parse_args()

    current = load(args.current)

    if args.update_baseline:
        # Validate before overwriting: an inequivalent or truncated run must
        # never become the new baseline.
        validate_for_update(current, args.current)
        # A baseline of a *different* schema is nearly always the wrong
        # target file — refuse rather than silently replace the block. A
        # missing baseline (new schema, no block checked in yet) is the
        # normal bootstrap path: create it, parent directories included.
        created = False
        try:
            with open(args.baseline) as f:
                existing = json.load(f)
            if (isinstance(existing, dict)
                    and existing.get("schema") != current["schema"]):
                sys.exit(f"FAIL: {args.baseline} carries schema "
                         f"{existing.get('schema')!r}, not "
                         f"{current['schema']!r} — refusing to replace a "
                         f"different benchmark's baseline (wrong file?)")
        except FileNotFoundError:
            created = True
        except json.JSONDecodeError:
            # A corrupt baseline is exactly what --update-baseline repairs.
            pass
        try:
            directory = os.path.dirname(args.baseline)
            if directory:
                os.makedirs(directory, exist_ok=True)
            shutil.copyfile(args.current, args.baseline)
        except OSError as err:
            sys.exit(f"FAIL: cannot write {args.baseline}: {err.strerror}")
        if created:
            print(f"created {args.baseline} from {args.current} "
                  f"(new {current['schema']} baseline)")
        else:
            print(f"updated {args.baseline} from {args.current}")
        return 0

    baseline = load(args.baseline)

    if baseline["schema"] != current["schema"]:
        # The candidate simply does not carry the benchmark block this
        # baseline gates — one line, both files, both schemas.
        sys.exit(f"FAIL: {args.current} has no {baseline['schema']} "
                 f"benchmark block (it carries {current['schema']}); "
                 f"baseline {args.baseline} cannot gate it — regenerate "
                 f"the candidate with the matching bench tool")

    if baseline["schema"] == "jfeed-bench-matching-v1":
        return compare_matching(baseline, current, args)
    if baseline["schema"] == "jfeed-bench-loadgen-v1":
        return compare_loadgen(baseline, current, args)
    if baseline["schema"] == "jfeed-bench-resubmission-v1":
        return compare_resubmission(baseline, current, args)
    return compare_table1(baseline, current, args)


if __name__ == "__main__":
    sys.exit(main())
