#!/usr/bin/env python3
"""CI regression gate for the match engine's deterministic step counts.

Compares a freshly generated BENCH_matching.json against the checked-in
baseline and fails (exit 1) when the indexed engine's backtracking work
regressed by more than the threshold. Only deterministic counters are
compared — wall times depend on the runner and are ignored.

A malformed or schema-drifted input fails with a one-line diagnostic naming
the file and the missing key (exit 1), never a traceback: CI log readers
should see "what drifted", not a stack dump. `--update-baseline` copies the
current report over the baseline file instead of comparing — the documented
workflow after an intended pattern/KB change.

Usage: compare_bench.py BASELINE CURRENT [--threshold 0.10]
       compare_bench.py BASELINE CURRENT --update-baseline
"""

import argparse
import json
import shutil
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as err:
        sys.exit(f"FAIL: cannot read {path}: {err.strerror}")
    except json.JSONDecodeError as err:
        sys.exit(f"FAIL: {path} is not valid JSON: {err}")
    if data.get("schema") != "jfeed-bench-matching-v1":
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return data


def lookup(data, path, dotted):
    """Walks `dotted` ("totals.indexed_steps") through nested dicts; exits
    with a clear message naming the file and key when a level is missing —
    a baseline generated before a schema addition must fail readably."""
    node = data
    walked = []
    for key in dotted.split("."):
        walked.append(key)
        if not isinstance(node, dict) or key not in node:
            sys.exit(
                f"FAIL: {path} is missing key '{'.'.join(walked)}' "
                f"(schema drift — regenerate the file, or run with "
                f"--update-baseline after an intended change)")
        node = node[key]
    return node


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional step regression (default 0.10)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="copy CURRENT over BASELINE instead of comparing "
                             "(after an intended pattern/KB change)")
    args = parser.parse_args()

    current = load(args.current)

    if args.update_baseline:
        # Validate before overwriting: an inequivalent or truncated run must
        # never become the new baseline.
        if not current.get("equivalent", False):
            sys.exit("FAIL: refusing to update baseline from a run that "
                     "reports engine inequivalence")
        lookup(current, args.current, "totals.indexed_steps")
        lookup(current, args.current, "ablation.indexed_steps")
        shutil.copyfile(args.current, args.baseline)
        print(f"updated {args.baseline} from {args.current}")
        return 0

    baseline = load(args.baseline)

    if not current.get("equivalent", False):
        sys.exit("FAIL: current run reports engine inequivalence")

    failures = []

    def check(label, base_steps, cur_steps):
        limit = base_steps * (1.0 + args.threshold)
        status = "ok"
        if cur_steps > limit:
            status = f"REGRESSION (limit {limit:.0f})"
            failures.append(label)
        print(f"{label:40s} baseline {base_steps:8d}  current {cur_steps:8d}  {status}")

    for dotted in ("totals.indexed_steps", "ablation.indexed_steps"):
        check(dotted,
              lookup(baseline, args.baseline, dotted),
              lookup(current, args.current, dotted))

    base_by_id = {a["id"]: a
                  for a in lookup(baseline, args.baseline, "assignments")
                  if isinstance(a, dict) and "id" in a}
    for a in lookup(current, args.current, "assignments"):
        if not isinstance(a, dict) or "id" not in a:
            sys.exit(f"FAIL: {args.current} has an assignment entry without "
                     f"an 'id' (schema drift — regenerate the file)")
        b = base_by_id.get(a["id"])
        if b is None:
            print(f"{a['id']:40s} new assignment, no baseline — skipped")
            continue
        check(f"assignment {a['id']}",
              lookup(b, args.baseline, "indexed.steps"),
              lookup(a, args.current, "indexed.steps"))

    if failures:
        print(f"\nFAIL: step regression beyond {args.threshold:.0%} in: "
              + ", ".join(failures))
        print("If the regression is intended (pattern/KB change), rerun with "
              "--update-baseline (or regenerate "
              "bench/baselines/BENCH_matching.json) and commit it.")
        return 1
    print("\nOK: no step regressions beyond "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
