// jfeed-loadgen: open-loop deadline-spike load generator for a running
// jfeedd (single- or multi-tenant). Replays the testing::traffic schedule —
// a quiet lead-in, then a ramp of near-duplicate resubmissions whose
// density rises until the deadline — and reports per-assignment throughput,
// shed rate, and latency percentiles.
//
//   jfeed_loadgen --port <n> [flags]
//
// Flags:
//   --port <n>           jfeedd port (required)
//   --assignments <ids>  comma-separated assignment ids (default
//                        assignment1,mitx-polynomials,rit-all-g-medals)
//   --submissions <n>    total submissions across assignments (default 600)
//   --idle-ms <n>        quiet lead-in duration (default 1000)
//   --spike-ms <n>       spike window duration (default 4000)
//   --connections <n>    sender threads (default 8)
//   --seed <n>           traffic-model seed (default 1)
//   --deadline-ms <n>    per-request client deadline (default 30000)
//   --time-scale <x100>  schedule compression: 100 replays offsets as-is,
//                        50 at double speed, 0 fires everything at once
//                        (default 100)
//   --json <path>        write the jfeed-bench-loadgen-v1 report (default
//                        BENCH_loadgen.json; "-" prints to stdout only)
//
// Open-loop means the schedule, not the server, decides send times: a
// sender thread claims the next due event, sleeps until its offset, fires
// one single-line POST /grade and classifies the answer —
//   ok     HTTP 200 (graded; per-line 404/429 cannot occur on a one-line
//          request that was accepted)
//   shed   HTTP 429 (admission quota) or 503 (draining/at capacity)
//   error  anything else, including transport failures
// so when the daemon sheds, offered load does NOT slow down — exactly the
// deadline-day condition the per-shard admission control exists for.
//
// Every request carries a freshly minted W3C traceparent; the report's
// totals block lists the trace ids of the slowest graded requests and of
// every shed one, ready to paste into /events?trace_id= or to find in the
// fleet's stitched /tracez.
//
// Exit codes: 0 when every request got an HTTP answer and none errored,
// 1 when any request errored, 2 on usage/startup problems.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "fleet/http_client.h"
#include "kb/assignments.h"
#include "obs/trace_context.h"
#include "testing/traffic.h"

namespace {

using jfeed::testing::TrafficAssignment;
using jfeed::testing::TrafficEvent;
using jfeed::testing::TrafficOptions;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--assignments a1,a2,...] "
               "[--submissions N] [--idle-ms N] [--spike-ms N] "
               "[--connections N] [--seed N] [--deadline-ms N] "
               "[--time-scale N] [--json PATH|-]\n",
               argv0);
  return 2;
}

bool ParseInt64(const char* text, int64_t* out) {
  char* end = nullptr;
  long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

std::vector<std::string> SplitIds(const std::string& text) {
  std::vector<std::string> ids;
  std::string current;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ',') {
      if (!current.empty()) ids.push_back(current);
      current.clear();
    } else {
      current.push_back(text[i]);
    }
  }
  return ids;
}

/// One request's fate, recorded by the sender threads.
struct Sample {
  size_t assignment = 0;  ///< Index into the assignment-id list.
  int64_t latency_us = 0;
  enum class Kind { kOk, kShed, kError } kind = Kind::kError;
  /// The trace id this request carried as its traceparent — the join key
  /// into the daemon's /events?trace_id= and /tracez views.
  std::string trace_id;
};

/// Latency percentile over an explicitly sorted sample set (exact, not
/// bucketed — the loadgen holds every sample anyway).
int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  double rank = p * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(rank + 0.5)];
}

struct Totals {
  int64_t sent = 0;
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t errors = 0;
  std::vector<int64_t> ok_latencies_us;
  /// {latency_us, trace_id} per ok request — source of the slowest-N list.
  std::vector<std::pair<int64_t, std::string>> ok_traces;
  /// Trace id of every shed request, send order.
  std::vector<std::string> shed_traces;

  void Fold(const Sample& sample) {
    ++sent;
    switch (sample.kind) {
      case Sample::Kind::kOk:
        ++ok;
        ok_latencies_us.push_back(sample.latency_us);
        ok_traces.emplace_back(sample.latency_us, sample.trace_id);
        break;
      case Sample::Kind::kShed:
        ++shed;
        shed_traces.push_back(sample.trace_id);
        break;
      case Sample::Kind::kError:
        ++errors;
        break;
    }
  }

  double ShedRate() const {
    return sent > 0 ? static_cast<double>(shed) / static_cast<double>(sent)
                    : 0.0;
  }
};

std::string RenderBlock(const Totals& totals, double wall_s) {
  std::vector<int64_t> sorted = totals.ok_latencies_us;
  std::sort(sorted.begin(), sorted.end());
  char buf[64];
  std::string out;
  out += "\"sent\":" + std::to_string(totals.sent);
  out += ",\"ok\":" + std::to_string(totals.ok);
  out += ",\"shed\":" + std::to_string(totals.shed);
  out += ",\"errors\":" + std::to_string(totals.errors);
  std::snprintf(buf, sizeof(buf), "%.4f", totals.ShedRate());
  out += ",\"shed_rate\":";
  out += buf;
  double throughput =
      wall_s > 0 ? static_cast<double>(totals.ok) / wall_s : 0.0;
  std::snprintf(buf, sizeof(buf), "%.2f", throughput);
  out += ",\"throughput_ok_per_s\":";
  out += buf;
  out += ",\"latency_us\":{\"p50\":" +
         std::to_string(Percentile(sorted, 0.50));
  out += ",\"p90\":" + std::to_string(Percentile(sorted, 0.90));
  out += ",\"p99\":" + std::to_string(Percentile(sorted, 0.99));
  out += ",\"max\":" + std::to_string(sorted.empty() ? 0 : sorted.back());
  out += "}";
  return out;
}

/// Trace pointers into the distributed-trace views: the slowest `n` graded
/// requests (latency descending — the ones worth pulling up in /tracez or
/// /events?trace_id=) and every shed request. Schema-additive fields of the
/// jfeed-bench-loadgen-v1 report.
std::string RenderTraceBlock(const Totals& totals, size_t n) {
  std::vector<std::pair<int64_t, std::string>> slowest = totals.ok_traces;
  std::sort(slowest.begin(), slowest.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (slowest.size() > n) slowest.resize(n);
  std::string out = ",\"slowest_traces\":[";
  for (size_t i = 0; i < slowest.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"latency_us\":" + std::to_string(slowest[i].first);
    out += ",\"trace_id\":\"" + slowest[i].second + "\"}";
  }
  out += "],\"shed_traces\":[";
  for (size_t i = 0; i < totals.shed_traces.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + totals.shed_traces[i] + "\"";
  }
  out += "]";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t port = 0;
  std::string assignment_list = "assignment1,mitx-polynomials,rit-all-g-medals";
  TrafficOptions traffic;
  traffic.submissions = 600;
  traffic.idle_ms = 1000;
  traffic.spike_ms = 4000;
  int64_t connections = 8;
  int64_t deadline_ms = 30000;
  int64_t time_scale = 100;
  std::string json_path = "BENCH_loadgen.json";

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", arg);
      return Usage(argv[0]);
    }
    const char* value_text = argv[++i];
    if (std::strcmp(arg, "--assignments") == 0) {
      assignment_list = value_text;
      continue;
    }
    if (std::strcmp(arg, "--json") == 0) {
      json_path = value_text;
      continue;
    }
    int64_t value = 0;
    if (!ParseInt64(value_text, &value)) {
      std::fprintf(stderr, "bad value for %s: '%s'\n", arg, value_text);
      return 2;
    }
    if (std::strcmp(arg, "--port") == 0) {
      port = value;
    } else if (std::strcmp(arg, "--submissions") == 0) {
      traffic.submissions = static_cast<size_t>(value);
    } else if (std::strcmp(arg, "--idle-ms") == 0) {
      traffic.idle_ms = value;
    } else if (std::strcmp(arg, "--spike-ms") == 0) {
      traffic.spike_ms = value;
    } else if (std::strcmp(arg, "--connections") == 0) {
      connections = value;
    } else if (std::strcmp(arg, "--seed") == 0) {
      traffic.seed = static_cast<uint64_t>(value);
    } else if (std::strcmp(arg, "--deadline-ms") == 0) {
      deadline_ms = value;
    } else if (std::strcmp(arg, "--time-scale") == 0) {
      time_scale = value;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return Usage(argv[0]);
    }
  }
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "--port is required (1..65535)\n");
    return Usage(argv[0]);
  }
  if (connections < 1) connections = 1;

  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  std::vector<std::string> ids = SplitIds(assignment_list);
  if (ids.empty()) return Usage(argv[0]);
  std::vector<TrafficAssignment> assignments;
  for (const auto& id : ids) {
    bool known = false;
    for (const auto& kb_id : kb.assignment_ids()) known |= kb_id == id;
    if (!known) {
      std::fprintf(stderr, "unknown assignment '%s' (try jfeedd --list)\n",
                   id.c_str());
      return 2;
    }
    assignments.push_back(TrafficAssignment{id, &kb.assignment(id).generator});
  }

  std::vector<TrafficEvent> schedule =
      jfeed::testing::BuildDeadlineSpikeSchedule(assignments, traffic);
  std::map<std::string, size_t> assignment_index;
  for (size_t i = 0; i < ids.size(); ++i) assignment_index[ids[i]] = i;

  // Pre-render request bodies so the send path is a sleep plus a syscall.
  std::vector<std::string> bodies;
  bodies.reserve(schedule.size());
  for (const auto& event : schedule) {
    std::string body = "{\"id\":\"" + event.id + "\",\"assignment\":\"" +
                       event.assignment + "\",\"source\":\"";
    for (char c : event.source) {
      switch (c) {
        case '"': body += "\\\""; break;
        case '\\': body += "\\\\"; break;
        case '\n': body += "\\n"; break;
        case '\r': body += "\\r"; break;
        case '\t': body += "\\t"; break;
        default: body.push_back(c);
      }
    }
    body += "\"}\n";
    bodies.push_back(std::move(body));
  }

  std::printf("jfeed-loadgen: %zu submissions across %zu assignments -> "
              "port %lld (%lld connections, idle %lldms + spike %lldms, "
              "seed %llu)\n",
              schedule.size(), ids.size(), static_cast<long long>(port),
              static_cast<long long>(connections),
              static_cast<long long>(traffic.idle_ms),
              static_cast<long long>(traffic.spike_ms),
              static_cast<unsigned long long>(traffic.seed));
  std::fflush(stdout);

  std::vector<Sample> samples(schedule.size());
  std::atomic<size_t> next{0};
  auto start = std::chrono::steady_clock::now();

  auto sender = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= schedule.size()) return;
      // Open loop: fire at the schedule's offset regardless of how the
      // previous requests fared.
      auto due = start + std::chrono::milliseconds(
                             schedule[i].offset_ms * time_scale / 100);
      std::this_thread::sleep_until(due);
      // Every request is the root of its own distributed trace: the daemon
      // (or broker) adopts this context, so the report's trace ids join
      // directly against /events?trace_id= and the stitched /tracez.
      jfeed::obs::TraceContext ctx = jfeed::obs::MintTraceContext();
      auto sent_at = std::chrono::steady_clock::now();
      auto reply = jfeed::fleet::Fetch(
          static_cast<uint16_t>(port), "POST", "/grade", bodies[i],
          {{"traceparent", jfeed::obs::FormatTraceparent(ctx)}}, deadline_ms);
      auto answered_at = std::chrono::steady_clock::now();
      Sample& sample = samples[i];
      sample.trace_id = jfeed::obs::TraceIdHex(ctx);
      sample.assignment = assignment_index[schedule[i].assignment];
      sample.latency_us =
          std::chrono::duration_cast<std::chrono::microseconds>(answered_at -
                                                                sent_at)
              .count();
      if (!reply.ok()) {
        sample.kind = Sample::Kind::kError;
      } else if (reply.value().status == 200) {
        sample.kind = Sample::Kind::kOk;
      } else if (reply.value().status == 429 ||
                 reply.value().status == 503) {
        sample.kind = Sample::Kind::kShed;
      } else {
        sample.kind = Sample::Kind::kError;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  for (int64_t i = 0; i < connections; ++i) threads.emplace_back(sender);
  for (auto& thread : threads) thread.join();
  double wall_s = std::chrono::duration_cast<std::chrono::duration<double>>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  Totals totals;
  std::vector<Totals> per_assignment(ids.size());
  for (const Sample& sample : samples) {
    totals.Fold(sample);
    per_assignment[sample.assignment].Fold(sample);
  }

  std::string report = "{\"schema\":\"jfeed-bench-loadgen-v1\"";
  report += ",\"config\":{\"submissions\":" +
            std::to_string(traffic.submissions);
  report += ",\"connections\":" + std::to_string(connections);
  report += ",\"idle_ms\":" + std::to_string(traffic.idle_ms);
  report += ",\"spike_ms\":" + std::to_string(traffic.spike_ms);
  report += ",\"seed\":" + std::to_string(traffic.seed);
  report += ",\"time_scale\":" + std::to_string(time_scale);
  report += "}";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", wall_s);
  report += ",\"wall_s\":";
  report += buf;
  report += ",\"totals\":{" + RenderBlock(totals, wall_s) +
            RenderTraceBlock(totals, 5) + "}";
  report += ",\"assignments\":[";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) report += ",";
    report += "{\"id\":\"" + ids[i] + "\",";
    report += RenderBlock(per_assignment[i], wall_s);
    report += "}";
  }
  report += "]}";

  std::printf("jfeed-loadgen: %lld ok, %lld shed (rate %.3f), %lld errors "
              "in %.2fs; p99 %lldus\n",
              static_cast<long long>(totals.ok),
              static_cast<long long>(totals.shed), totals.ShedRate(),
              static_cast<long long>(totals.errors), wall_s,
              static_cast<long long>([&] {
                std::vector<int64_t> sorted = totals.ok_latencies_us;
                std::sort(sorted.begin(), sorted.end());
                return Percentile(sorted, 0.99);
              }()));
  if (json_path != "-") {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fputs(report.c_str(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("jfeed-loadgen: wrote %s\n", json_path.c_str());
  } else {
    std::puts(report.c_str());
  }
  return totals.errors > 0 ? 1 : 0;
}
