// Command-line grader: reads a Java submission from a file (or stdin), runs
// it through the hardened grading pipeline (parse -> EPDG -> pattern match
// -> functional tests, with resource guards and graceful degradation) and
// prints the personalized feedback for a knowledge-base assignment.
//
//   grade <assignment-id> [file.java] [flags]   grade a submission
//   grade --list                                list assignment ids
//   grade <assignment-id> --reference           print the reference solution
//   grade <assignment-id> --dot [file]          print the submission's EPDG
//
// Flags:
//   --timeout-ms <n>       wall-clock deadline per functional test (ms)
//   --max-heap-bytes <n>   interpreter heap budget per test (bytes)
//   --json                 print the structured GradingOutcome as JSON
//
// Exit codes:
//   0  the submission was fully graded (feedback produced at the full EPDG
//      tier, whether or not it was correct)
//   1  degraded outcome: parse failure, budget blowup, spec mismatch, or an
//      internal fault forced a lower feedback tier
//   2  usage error (unknown assignment, unreadable file, bad flag)

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/feedback.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "pdg/epdg.h"
#include "service/pipeline.h"

namespace {

std::string ReadAll(std::istream& in) {
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int ListAssignments() {
  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  for (const auto& id : kb.assignment_ids()) {
    const auto& a = kb.assignment(id);
    std::printf("%-20s %s\n", id.c_str(), a.title.c_str());
  }
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <assignment-id> [file.java] [--timeout-ms N] "
               "[--max-heap-bytes N] [--json]\n"
               "       %s <assignment-id> --reference\n"
               "       %s <assignment-id> --dot [file.java]\n"
               "       %s --list\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

/// Parses a positive integer flag value; returns false on garbage.
bool ParseInt64(const char* text, int64_t* out) {
  char* end = nullptr;
  long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v <= 0) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--list") == 0) {
    return ListAssignments();
  }
  if (argc < 2) return Usage(argv[0]);

  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  std::string id = argv[1];
  bool known = false;
  for (const auto& known_id : kb.assignment_ids()) known |= known_id == id;
  if (!known) {
    std::fprintf(stderr, "unknown assignment '%s' (try --list)\n",
                 id.c_str());
    return 2;
  }
  const auto& assignment = kb.assignment(id);

  // Flag parsing: flags may appear anywhere after the assignment id; the
  // first non-flag argument is the submission file.
  bool dot = false;
  bool json = false;
  const char* path = nullptr;
  jfeed::service::PipelineOptions options;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--reference") == 0) {
      std::fputs(assignment.Reference().c_str(), stdout);
      return 0;
    } else if (std::strcmp(arg, "--dot") == 0) {
      dot = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--timeout-ms") == 0 ||
               std::strcmp(arg, "--max-heap-bytes") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg);
        return 2;
      }
      int64_t value = 0;
      if (!ParseInt64(argv[++i], &value)) {
        std::fprintf(stderr, "bad value for %s: '%s'\n", arg, argv[i]);
        return 2;
      }
      if (std::strcmp(arg, "--timeout-ms") == 0) {
        options.exec.deadline_ms = value;
      } else {
        options.exec.max_heap_bytes = value;
      }
    } else if (arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return Usage(argv[0]);
    } else if (path == nullptr) {
      path = arg;
    } else {
      return Usage(argv[0]);
    }
  }

  std::string source;
  if (path != nullptr) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 2;
    }
    source = ReadAll(file);
  } else {
    source = ReadAll(std::cin);
  }

  if (dot) {
    auto unit = jfeed::java::Parse(source);
    if (!unit.ok()) {
      std::fprintf(stderr, "submission does not parse: %s\n",
                   unit.status().ToString().c_str());
      return 1;
    }
    for (const auto& method : unit->methods) {
      auto graph = jfeed::pdg::BuildEpdg(method);
      if (!graph.ok()) {
        std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
        return 1;
      }
      std::fputs(graph->ToDot().c_str(), stdout);
    }
    return 0;
  }

  jfeed::service::GradingPipeline pipeline(assignment, options);
  jfeed::service::GradingOutcome outcome = pipeline.Grade(source);

  if (json) {
    std::printf("%s\n", jfeed::service::OutcomeToJson(outcome).c_str());
  } else if (outcome.tier ==
             jfeed::service::FeedbackTier::kParseDiagnostic) {
    std::fprintf(stderr, "submission does not parse: %s\n",
                 outcome.diagnostic.c_str());
  } else if (outcome.verdict == jfeed::service::Verdict::kSpecMismatch) {
    std::printf("The submission does not provide the expected method(s); "
                "no feedback can be given.\nExpected: ");
    for (const auto& method : assignment.spec.methods) {
      std::printf("%s ", method.expected_name.c_str());
    }
    std::printf("\n");
  } else {
    if (outcome.degraded()) {
      std::printf("[degraded: %s feedback — %s]\n",
                  jfeed::service::FeedbackTierName(outcome.tier),
                  outcome.diagnostic.c_str());
    }
    std::fputs(jfeed::core::RenderFeedback(outcome.feedback.comments).c_str(),
               stdout);
    std::printf("score: %.1f / %zu\n", outcome.feedback.score,
                outcome.feedback.comments.size());
    if (outcome.functional_ran) {
      std::printf("functional: %d/%d tests passed\n",
                  outcome.functional.tests_run -
                      outcome.functional.tests_failed,
                  outcome.functional.tests_run);
    }
  }
  // Exit taxonomy: 0 = fully graded, 1 = any degradation (parse failure,
  // budget blowup, fault-forced tier drop, spec mismatch), 2 = usage error.
  bool graded = !outcome.degraded() &&
                outcome.verdict != jfeed::service::Verdict::kSpecMismatch;
  return graded ? 0 : 1;
}
