// Command-line grader: reads a Java submission from a file (or stdin), runs
// it through the hardened grading pipeline (parse -> EPDG -> pattern match
// -> functional tests, with resource guards and graceful degradation) and
// prints the personalized feedback for a knowledge-base assignment.
//
//   grade <assignment-id> [file.java] [flags]   grade a submission
//   grade <assignment-id> --batch [file] [flags]  grade an NDJSON batch
//   grade --list                                list assignment ids
//   grade <assignment-id> --reference           print the reference solution
//   grade <assignment-id> --dot [file]          print the submission's EPDG
//
// Flags:
//   --timeout-ms <n>       wall-clock deadline per functional test (ms)
//   --max-heap-bytes <n>   interpreter heap budget per test (bytes)
//   --json                 print the structured GradingOutcome as JSON
//   --trace-out=<file>     write a Chrome trace_event JSON of the run
//                          (open in Perfetto / chrome://tracing)
//   --metrics-out=<file>   write the Prometheus text metrics dump
//   --events-out=<file>    write the flight recorder as NDJSON — one wide
//                          event per graded submission (DESIGN.md §6b)
//
// Batch mode (--batch): the input (file or stdin) is NDJSON, one submission
// per line — either {"id": "...", "source": "..."} or a bare JSON string —
// and the output is NDJSON too, one JSON outcome per line in input order
// (each outcome carries the line's id and index). Submissions are graded by
// the concurrent batch engine: a worker pool with a content-addressed
// result cache, so duplicate submissions cost one grade. Batch-only flags:
//   --jobs <n>             worker threads (default 4)
//   --queue <n>            bounded job-queue capacity (default 256)
//   --no-cache             disable the content-addressed result cache
//   --method-cache         enable method-level incremental grading: a
//                          resubmission reuses the unedited methods'
//                          graphs and match cells (cache="partial_hit")
//
// Exit codes:
//   0  the submission was fully graded (feedback produced at the full EPDG
//      tier, whether or not it was correct); in batch mode, every line was
//   1  degraded outcome: parse failure, budget blowup, spec mismatch, or an
//      internal fault forced a lower feedback tier; in batch mode, any line
//      degraded or failed to parse as NDJSON
//   2  usage error (unknown assignment, unreadable file, bad flag)

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/feedback.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pdg/epdg.h"
#include "sched/batch_io.h"
#include "sched/scheduler.h"
#include "service/pipeline.h"

namespace {

std::string ReadAll(std::istream& in) {
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int ListAssignments() {
  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  for (const auto& id : kb.assignment_ids()) {
    const auto& a = kb.assignment(id);
    std::printf("%-20s %s\n", id.c_str(), a.title.c_str());
  }
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <assignment-id> [file.java] [--timeout-ms N] "
               "[--max-heap-bytes N] [--json] "
               "[--match-engine=indexed|legacy]\n"
               "       %s <assignment-id> --batch [file.ndjson] [--jobs N] "
               "[--queue N] [--no-cache] [--method-cache]\n"
               "       %s <assignment-id> --reference\n"
               "       %s <assignment-id> --dot [file.java]\n"
               "       %s --list\n",
               argv0, argv0, argv0, argv0, argv0);
  return 2;
}

/// Best-effort observability dumps: an unwritable path warns on stderr but
/// never changes the grading exit code — feedback always outranks telemetry.
void DumpObservability(const char* trace_out, const char* metrics_out,
                       const char* events_out) {
  if (metrics_out != nullptr) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out);
    } else {
      out << jfeed::obs::Registry::Global().Render();
    }
  }
  if (trace_out != nullptr) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_out);
    } else {
      out << jfeed::obs::Tracer::Global().ExportChromeJson();
    }
  }
  if (events_out != nullptr) {
    std::ofstream out(events_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", events_out);
    } else {
      out << jfeed::obs::EventLog::Global().RenderNdjson();
    }
  }
}

/// Parses a positive integer flag value; returns false on garbage.
bool ParseInt64(const char* text, int64_t* out) {
  char* end = nullptr;
  long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v <= 0) return false;
  *out = v;
  return true;
}

/// The NDJSON batch front end: reads one submission per input line, grades
/// the whole batch through the concurrent scheduler, writes one JSON
/// outcome per output line in input order. Returns the process exit code.
int RunBatch(const jfeed::kb::Assignment& assignment, std::istream& in,
             const jfeed::service::PipelineOptions& pipeline_options,
             const jfeed::sched::SchedulerOptions& scheduler_options) {
  // Decode every line first; bad lines get an error outcome but do not
  // block the rest of the batch.
  std::vector<std::string> ids;
  std::vector<std::string> sources;      // Parallel to ids.
  std::vector<size_t> submission_index;  // Line index -> sources index.
  std::vector<std::string> line_errors;  // Line index -> error ("" if ok).
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // Blank lines separate nothing; skip quietly.
    }
    auto decoded = jfeed::sched::ParseBatchLine(line);
    if (!decoded.ok()) {
      submission_index.push_back(SIZE_MAX);
      line_errors.push_back(decoded.status().message());
      continue;
    }
    submission_index.push_back(sources.size());
    line_errors.push_back("");
    ids.push_back(decoded->id);
    sources.push_back(std::move(decoded->source));
  }

  jfeed::sched::BatchScheduler scheduler(assignment, pipeline_options,
                                         scheduler_options);
  jfeed::sched::BatchStats stats;
  auto outcomes = scheduler.GradeBatchWithStats(sources, ids, &stats);

  bool all_clean = true;
  for (size_t i = 0; i < submission_index.size(); ++i) {
    if (submission_index[i] == SIZE_MAX) {
      std::printf("%s\n",
                  jfeed::sched::BatchErrorToJson(
                      i, jfeed::Status::InvalidArgument(line_errors[i]))
                      .c_str());
      all_clean = false;
      continue;
    }
    const auto& outcome = outcomes[submission_index[i]];
    std::printf("%s\n",
                jfeed::sched::BatchOutcomeToJson(ids[submission_index[i]], i,
                                                 outcome)
                    .c_str());
    if (outcome.degraded() ||
        outcome.verdict == jfeed::service::Verdict::kSpecMismatch) {
      all_clean = false;
    }
  }
  std::fprintf(stderr,
               "graded %zu submissions (%zu pipeline runs, %zu cache hits, "
               "%zu dedup hits, %.1f%% served without grading) on %d workers\n",
               stats.submissions, stats.graded, stats.cache_hits,
               stats.dedup_hits, 100.0 * stats.HitRate(), scheduler.jobs());
  return all_clean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--list") == 0) {
    return ListAssignments();
  }
  if (argc < 2) return Usage(argv[0]);

  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  std::string id = argv[1];
  bool known = false;
  for (const auto& known_id : kb.assignment_ids()) known |= known_id == id;
  if (!known) {
    std::fprintf(stderr, "unknown assignment '%s' (try --list)\n",
                 id.c_str());
    return 2;
  }
  const auto& assignment = kb.assignment(id);

  // Flag parsing: flags may appear anywhere after the assignment id; the
  // first non-flag argument is the submission file.
  bool dot = false;
  bool json = false;
  bool batch = false;
  const char* path = nullptr;
  const char* trace_out = nullptr;
  const char* metrics_out = nullptr;
  const char* events_out = nullptr;
  jfeed::service::PipelineOptions options;
  jfeed::sched::SchedulerOptions scheduler_options;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--reference") == 0) {
      std::fputs(assignment.Reference().c_str(), stdout);
      return 0;
    } else if (std::strcmp(arg, "--dot") == 0) {
      dot = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--batch") == 0) {
      batch = true;
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      scheduler_options.use_result_cache = false;
    } else if (std::strcmp(arg, "--method-cache") == 0) {
      scheduler_options.use_method_cache = true;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out = arg + 14;
    } else if (std::strncmp(arg, "--events-out=", 13) == 0) {
      events_out = arg + 13;
    } else if (std::strncmp(arg, "--match-engine=", 15) == 0) {
      const char* engine = arg + 15;
      if (std::strcmp(engine, "legacy") == 0) {
        options.match.match.engine = jfeed::core::MatchEngine::kLegacy;
      } else if (std::strcmp(engine, "indexed") == 0) {
        options.match.match.engine = jfeed::core::MatchEngine::kIndexed;
      } else {
        std::fprintf(stderr, "bad value for --match-engine: '%s'\n", engine);
        return 2;
      }
    } else if (std::strcmp(arg, "--timeout-ms") == 0 ||
               std::strcmp(arg, "--max-heap-bytes") == 0 ||
               std::strcmp(arg, "--jobs") == 0 ||
               std::strcmp(arg, "--queue") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg);
        return 2;
      }
      int64_t value = 0;
      if (!ParseInt64(argv[++i], &value)) {
        std::fprintf(stderr, "bad value for %s: '%s'\n", arg, argv[i]);
        return 2;
      }
      if (std::strcmp(arg, "--timeout-ms") == 0) {
        options.exec.deadline_ms = value;
      } else if (std::strcmp(arg, "--max-heap-bytes") == 0) {
        options.exec.max_heap_bytes = value;
      } else if (std::strcmp(arg, "--jobs") == 0) {
        scheduler_options.jobs = static_cast<int>(value);
      } else {
        scheduler_options.queue_capacity = static_cast<size_t>(value);
      }
    } else if (arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return Usage(argv[0]);
    } else if (path == nullptr) {
      path = arg;
    } else {
      return Usage(argv[0]);
    }
  }

  // Turn the observability layer on only when someone asked for its output:
  // without a sink the registry/tracer stay runtime-disabled and every
  // instrument in the pipeline is a single relaxed atomic load.
  if (metrics_out != nullptr) jfeed::obs::Registry::Global().set_enabled(true);
  if (trace_out != nullptr) jfeed::obs::Tracer::Global().Enable();
  if (events_out != nullptr) {
    jfeed::obs::EventLog::Global().set_enabled(true);
  }

  if (batch) {
    int rc;
    if (path != nullptr) {
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 2;
      }
      rc = RunBatch(assignment, file, options, scheduler_options);
    } else {
      rc = RunBatch(assignment, std::cin, options, scheduler_options);
    }
    DumpObservability(trace_out, metrics_out, events_out);
    return rc;
  }

  std::string source;
  if (path != nullptr) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 2;
    }
    source = ReadAll(file);
  } else {
    source = ReadAll(std::cin);
  }

  if (dot) {
    auto unit = jfeed::java::Parse(source);
    if (!unit.ok()) {
      std::fprintf(stderr, "submission does not parse: %s\n",
                   unit.status().ToString().c_str());
      return 1;
    }
    for (const auto& method : unit->methods) {
      auto graph = jfeed::pdg::BuildEpdg(method);
      if (!graph.ok()) {
        std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
        return 1;
      }
      std::fputs(graph->ToDot().c_str(), stdout);
    }
    return 0;
  }

  jfeed::service::GradingPipeline pipeline(assignment, options);
  // The CLI is its own outermost trace entry point: mint a root context so
  // the --json outcome (and any --trace-out export) carries a trace id even
  // for a local one-shot grade. When the tracer is off the span does not
  // record and the minted id is stamped below as the fallback.
  jfeed::obs::TraceContext cli_ctx = jfeed::obs::MintTraceContext();
  jfeed::service::GradingOutcome outcome;
  {
    jfeed::obs::Span cli_span("grade.cli", cli_ctx);
    outcome = pipeline.Grade(source);
  }
  if (outcome.trace_id.empty()) {
    outcome.trace_id = jfeed::obs::TraceIdHex(cli_ctx);
  }
  if (jfeed::obs::EventLog::Global().enabled()) {
    // Single-submission mode never touches the result cache, hence "off";
    // the submission file path doubles as the recorder id.
    jfeed::obs::EventLog::Global().Append(jfeed::service::BuildWideEvent(
        path != nullptr ? path : "stdin", assignment.id, "off", outcome));
  }

  if (json) {
    std::printf("%s\n", jfeed::service::OutcomeToJson(outcome).c_str());
  } else if (outcome.tier ==
             jfeed::service::FeedbackTier::kParseDiagnostic) {
    std::fprintf(stderr, "submission does not parse: %s\n",
                 outcome.diagnostic.c_str());
  } else if (outcome.verdict == jfeed::service::Verdict::kSpecMismatch) {
    std::printf("The submission does not provide the expected method(s); "
                "no feedback can be given.\nExpected: ");
    for (const auto& method : assignment.spec.methods) {
      std::printf("%s ", method.expected_name.c_str());
    }
    std::printf("\n");
  } else {
    if (outcome.degraded()) {
      std::printf("[degraded: %s feedback — %s]\n",
                  jfeed::service::FeedbackTierName(outcome.tier),
                  outcome.diagnostic.c_str());
    }
    std::fputs(jfeed::core::RenderFeedback(outcome.feedback.comments).c_str(),
               stdout);
    std::printf("score: %.1f / %zu\n", outcome.feedback.score,
                outcome.feedback.comments.size());
    if (outcome.functional_ran) {
      std::printf("functional: %d/%d tests passed\n",
                  outcome.functional.tests_run -
                      outcome.functional.tests_failed,
                  outcome.functional.tests_run);
    }
  }
  DumpObservability(trace_out, metrics_out, events_out);
  // Exit taxonomy: 0 = fully graded, 1 = any degradation (parse failure,
  // budget blowup, fault-forced tier drop, spec mismatch), 2 = usage error.
  bool graded = !outcome.degraded() &&
                outcome.verdict != jfeed::service::Verdict::kSpecMismatch;
  return graded ? 0 : 1;
}
