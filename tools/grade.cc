// Command-line grader: reads a Java submission from a file (or stdin) and
// prints the personalized feedback for a knowledge-base assignment.
//
//   grade <assignment-id> [file.java]      grade a submission
//   grade --list                           list assignment ids
//   grade <assignment-id> --reference      print the reference solution
//   grade <assignment-id> --dot [file]     print the submission's EPDG

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/submission_matcher.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "pdg/epdg.h"

namespace {

std::string ReadAll(std::istream& in) {
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int ListAssignments() {
  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  for (const auto& id : kb.assignment_ids()) {
    const auto& a = kb.assignment(id);
    std::printf("%-20s %s\n", id.c_str(), a.title.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--list") == 0) {
    return ListAssignments();
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <assignment-id> [file.java | --reference | "
                 "--dot [file.java]]\n       %s --list\n",
                 argv[0], argv[0]);
    return 2;
  }
  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  std::string id = argv[1];
  bool known = false;
  for (const auto& known_id : kb.assignment_ids()) known |= known_id == id;
  if (!known) {
    std::fprintf(stderr, "unknown assignment '%s' (try --list)\n",
                 id.c_str());
    return 2;
  }
  const auto& assignment = kb.assignment(id);

  if (argc >= 3 && std::strcmp(argv[2], "--reference") == 0) {
    std::fputs(assignment.Reference().c_str(), stdout);
    return 0;
  }

  bool dot = argc >= 3 && std::strcmp(argv[2], "--dot") == 0;
  const char* path = nullptr;
  if (dot) {
    path = argc >= 4 ? argv[3] : nullptr;
  } else if (argc >= 3) {
    path = argv[2];
  }

  std::string source;
  if (path != nullptr) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 2;
    }
    source = ReadAll(file);
  } else {
    source = ReadAll(std::cin);
  }

  auto unit = jfeed::java::Parse(source);
  if (!unit.ok()) {
    std::fprintf(stderr, "submission does not parse: %s\n",
                 unit.status().ToString().c_str());
    return 1;
  }

  if (dot) {
    for (const auto& method : unit->methods) {
      auto graph = jfeed::pdg::BuildEpdg(method);
      if (!graph.ok()) {
        std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
        return 1;
      }
      std::fputs(graph->ToDot().c_str(), stdout);
    }
    return 0;
  }

  auto feedback = jfeed::core::MatchSubmission(assignment.spec, *unit);
  if (!feedback.ok()) {
    std::fprintf(stderr, "%s\n", feedback.status().ToString().c_str());
    return 1;
  }
  if (!feedback->matched) {
    std::printf("The submission does not provide the expected method(s); "
                "no feedback can be given.\nExpected: ");
    for (const auto& method : assignment.spec.methods) {
      std::printf("%s ", method.expected_name.c_str());
    }
    std::printf("\n");
    return 1;
  }
  std::fputs(jfeed::core::RenderFeedback(feedback->comments).c_str(),
             stdout);
  std::printf("score: %.1f / %zu\n", feedback->score,
              feedback->comments.size());
  return feedback->AllCorrect() ? 0 : 1;
}
