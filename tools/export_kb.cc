// Writes the 24-pattern knowledge base in its text format to stdout (or a
// file given as argv[1]) — the publicly-available artifact of the paper.

#include <cstdio>
#include <cstring>

#include "kb/assignments.h"
#include "kb/serialization.h"

int main(int argc, char** argv) {
  std::string text;
  if (argc > 2 && std::strcmp(argv[2], "--specs") == 0) {
    text = "# jfeed knowledge base — the twelve Table-I assignment "
           "specifications.\n\n";
    const auto& kb = jfeed::kb::KnowledgeBase::Get();
    for (const auto& id : kb.assignment_ids()) {
      text += jfeed::kb::SerializeSpec(kb.assignment(id).spec);
      text += "\n";
    }
  } else {
    text = jfeed::kb::ExportPatternLibrary();
  }
  if (argc > 1) {
    FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::perror("fopen");
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote %zu bytes to %s\n", text.size(), argv[1]);
    return 0;
  }
  std::fputs(text.c_str(), stdout);
  return 0;
}
