#!/usr/bin/env python3
"""Unit tests for compare_bench.py: the CI gate must fail readably (one-line
diagnostic, exit 1) on schema drift, gate regressions by threshold, and
support --update-baseline. Run from ctest via find_package(Python3)."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_bench.py")


def report(indexed_total=100, ablation=50, assignments=None,
           equivalent=True, schema="jfeed-bench-matching-v1"):
    if assignments is None:
        assignments = [{"id": "assignment1", "indexed": {"steps": 40}}]
    return {
        "schema": schema,
        "equivalent": equivalent,
        "totals": {"indexed_steps": indexed_total},
        "ablation": {"indexed_steps": ablation},
        "assignments": assignments,
    }


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def write(self, name, data):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            if isinstance(data, str):
                f.write(data)
            else:
                json.dump(data, f)
        return path

    def run_compare(self, *argv):
        return subprocess.run([sys.executable, SCRIPT, *argv],
                              capture_output=True, text=True)

    def test_identical_reports_pass(self):
        base = self.write("base.json", report())
        cur = self.write("cur.json", report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("OK: no step regressions", result.stdout)

    def test_regression_beyond_threshold_fails(self):
        base = self.write("base.json", report(indexed_total=100))
        cur = self.write("cur.json", report(indexed_total=150))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)
        self.assertIn("totals.indexed_steps", result.stdout)

    def test_regression_within_custom_threshold_passes(self):
        base = self.write("base.json", report(indexed_total=100))
        cur = self.write("cur.json", report(indexed_total=150))
        result = self.run_compare(base, cur, "--threshold", "0.60")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_missing_baseline_key_fails_with_message_not_traceback(self):
        stale = report()
        del stale["totals"]["indexed_steps"]
        base = self.write("base.json", stale)
        cur = self.write("cur.json", report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("missing key 'totals.indexed_steps'", combined)
        self.assertIn("base.json", combined)
        self.assertNotIn("Traceback", combined)

    def test_missing_nested_assignment_key_fails_readably(self):
        stale = report(assignments=[{"id": "assignment1", "indexed": {}}])
        base = self.write("base.json", stale)
        cur = self.write("cur.json", report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("missing key 'indexed.steps'", combined)
        self.assertNotIn("Traceback", combined)

    def test_invalid_json_fails_readably(self):
        base = self.write("base.json", "{not json")
        cur = self.write("cur.json", report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("not valid JSON", combined)
        self.assertNotIn("Traceback", combined)

    def test_wrong_schema_fails(self):
        base = self.write("base.json", report(schema="something-else"))
        cur = self.write("cur.json", report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("unexpected schema", result.stdout + result.stderr)

    def test_inequivalent_current_fails(self):
        base = self.write("base.json", report())
        cur = self.write("cur.json", report(equivalent=False))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("inequivalence", result.stdout + result.stderr)

    def test_update_baseline_copies_current(self):
        base = self.write("base.json", report(indexed_total=100))
        cur = self.write("cur.json", report(indexed_total=150))
        result = self.run_compare(base, cur, "--update-baseline")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        with open(base) as f:
            self.assertEqual(json.load(f)["totals"]["indexed_steps"], 150)
        # And the updated baseline now gates cleanly against that run.
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0)

    def test_update_baseline_refuses_inequivalent_run(self):
        base = self.write("base.json", report(indexed_total=100))
        cur = self.write("cur.json", report(equivalent=False))
        result = self.run_compare(base, cur, "--update-baseline")
        self.assertEqual(result.returncode, 1)
        with open(base) as f:
            self.assertEqual(json.load(f)["totals"]["indexed_steps"], 100)

    def test_new_assignment_without_baseline_is_skipped(self):
        base = self.write("base.json", report())
        cur = self.write("cur.json", report(assignments=[
            {"id": "assignment1", "indexed": {"steps": 40}},
            {"id": "assignment9", "indexed": {"steps": 999}},
        ]))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("no baseline", result.stdout)


if __name__ == "__main__":
    unittest.main()
