#!/usr/bin/env python3
"""Unit tests for compare_bench.py: the CI gate must fail readably (one-line
diagnostic, exit 1) on schema drift, gate regressions by threshold, and
support --update-baseline. Run from ctest via find_package(Python3)."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_bench.py")


def report(indexed_total=100, ablation=50, assignments=None,
           equivalent=True, schema="jfeed-bench-matching-v1",
           allocs_total=150):
    if assignments is None:
        assignments = [{"id": "assignment1", "indexed": {"steps": 40},
                        "allocs_per_submission": 150}]
    return {
        "schema": schema,
        "equivalent": equivalent,
        "totals": {"indexed_steps": indexed_total,
                   "allocs_per_submission": allocs_total},
        "ablation": {"indexed_steps": ablation},
        "assignments": assignments,
    }


def table1_assignment(aid="assignment1", discrepancies=3, evaluated=198):
    return {"id": aid, "space": 1000, "patterns": 4, "constraints": 2,
            "sampled": 200, "evaluated": evaluated, "parse_failures": 2,
            "discrepancies": discrepancies, "paper_discrepancies": 4,
            "avg_loc": 11.5, "avg_functional_us": 120.0,
            "avg_match_us": 40.0, "wall_ms": 55.3}


def table1_report(samples=200, assignments=None):
    if assignments is None:
        assignments = [table1_assignment()]
    return {
        "schema": "jfeed-bench-table1-v1",
        "samples": samples,
        "assignments": assignments,
        "totals": {"assignments": len(assignments), "wall_ms": 55.3},
    }


def loadgen_block(sent=600, ok=570, shed=30, errors=0, p99=12000):
    return {"sent": sent, "ok": ok, "shed": shed, "errors": errors,
            "shed_rate": shed / sent if sent else 0.0,
            "throughput_ok_per_s": 95.0,
            "latency_us": {"p50": 2000, "p90": 8000, "p99": p99,
                           "max": p99 * 2}}


def loadgen_report(sent=600, shed=30, errors=0, p99=12000,
                   assignments=None):
    if assignments is None:
        assignments = [dict(id="assignment1",
                            **loadgen_block(sent=sent // 2, shed=shed // 2,
                                            p99=p99)),
                       dict(id="mitx-polynomials",
                            **loadgen_block(sent=sent - sent // 2,
                                            shed=shed - shed // 2,
                                            p99=p99))]
    return {
        "schema": "jfeed-bench-loadgen-v1",
        "config": {"submissions": sent, "connections": 8, "idle_ms": 1000,
                   "spike_ms": 4000, "seed": 1, "time_scale": 25},
        "wall_s": 6.3,
        "totals": loadgen_block(sent=sent, ok=sent - shed - errors,
                                shed=shed, errors=errors, p99=p99),
        "assignments": assignments,
    }


def resubmission_assignment(aid="assignment1", rate=0.875, speedup=2.2):
    return {"id": aid, "partial_hit_rate": rate, "speedup": speedup,
            "cold_wall_ms": 4.0, "warm_wall_ms": 4.0 / speedup}


def resubmission_report(methods_reused=252, methods_total=288, speedup=2.2,
                        alloc_ratio=0.78, equivalent=True, assignments=None):
    if assignments is None:
        assignments = [resubmission_assignment(
            rate=methods_reused / methods_total, speedup=speedup)]
    return {
        "schema": "jfeed-bench-resubmission-v1",
        "config": {"steps": 8, "reps": 5, "seed": 1,
                   "assignments": len(assignments)},
        "totals": {
            "submissions": 108, "resubmissions": 96,
            "methods_total": methods_total,
            "methods_reused": methods_reused,
            "methods_regraded": methods_total - methods_reused,
            "partial_hits": 96,
            "partial_hit_rate": methods_reused / methods_total,
            "cold_wall_ms": 100.0, "warm_wall_ms": 100.0 / speedup,
            "speedup": speedup, "cold_allocs": 10000,
            "warm_allocs": int(10000 * alloc_ratio),
            "alloc_ratio": alloc_ratio, "equivalent": equivalent,
        },
        "assignments": assignments,
    }


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def write(self, name, data):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            if isinstance(data, str):
                f.write(data)
            else:
                json.dump(data, f)
        return path

    def run_compare(self, *argv):
        return subprocess.run([sys.executable, SCRIPT, *argv],
                              capture_output=True, text=True)

    def test_identical_reports_pass(self):
        base = self.write("base.json", report())
        cur = self.write("cur.json", report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("OK: no step or allocation regressions", result.stdout)

    def test_regression_beyond_threshold_fails(self):
        base = self.write("base.json", report(indexed_total=100))
        cur = self.write("cur.json", report(indexed_total=150))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)
        self.assertIn("totals.indexed_steps", result.stdout)

    def test_regression_within_custom_threshold_passes(self):
        base = self.write("base.json", report(indexed_total=100))
        cur = self.write("cur.json", report(indexed_total=150))
        result = self.run_compare(base, cur, "--threshold", "0.60")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_allocation_regression_beyond_threshold_fails(self):
        base = self.write("base.json", report(allocs_total=150))
        cur = self.write("cur.json", report(allocs_total=400))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)
        self.assertIn("totals.allocs_per_submission", result.stdout)

    def test_allocation_regression_within_threshold_passes(self):
        base = self.write("base.json", report(allocs_total=150))
        cur = self.write("cur.json", report(allocs_total=160))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_missing_allocs_key_fails_with_message_not_traceback(self):
        # A baseline generated before the allocation counter existed must
        # fail with the regenerate hint, not a KeyError traceback.
        stale = report()
        del stale["totals"]["allocs_per_submission"]
        base = self.write("base.json", stale)
        cur = self.write("cur.json", report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("missing key 'totals.allocs_per_submission'", combined)
        self.assertNotIn("Traceback", combined)

    def test_update_baseline_refuses_report_without_allocs(self):
        base = self.write("base.json", report(allocs_total=150))
        truncated = report()
        del truncated["assignments"][0]["allocs_per_submission"]
        cur = self.write("cur.json", truncated)
        result = self.run_compare(base, cur, "--update-baseline")
        self.assertEqual(result.returncode, 1)
        with open(base) as f:
            self.assertEqual(
                json.load(f)["totals"]["allocs_per_submission"], 150)

    def test_missing_baseline_key_fails_with_message_not_traceback(self):
        stale = report()
        del stale["totals"]["indexed_steps"]
        base = self.write("base.json", stale)
        cur = self.write("cur.json", report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("missing key 'totals.indexed_steps'", combined)
        self.assertIn("base.json", combined)
        self.assertNotIn("Traceback", combined)

    def test_missing_nested_assignment_key_fails_readably(self):
        stale = report(assignments=[{"id": "assignment1", "indexed": {}}])
        base = self.write("base.json", stale)
        cur = self.write("cur.json", report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("missing key 'indexed.steps'", combined)
        self.assertNotIn("Traceback", combined)

    def test_invalid_json_fails_readably(self):
        base = self.write("base.json", "{not json")
        cur = self.write("cur.json", report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("not valid JSON", combined)
        self.assertNotIn("Traceback", combined)

    def test_wrong_schema_fails(self):
        base = self.write("base.json", report(schema="something-else"))
        cur = self.write("cur.json", report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("unexpected schema", result.stdout + result.stderr)

    def test_inequivalent_current_fails(self):
        base = self.write("base.json", report())
        cur = self.write("cur.json", report(equivalent=False))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("inequivalence", result.stdout + result.stderr)

    def test_update_baseline_copies_current(self):
        base = self.write("base.json", report(indexed_total=100))
        cur = self.write("cur.json", report(indexed_total=150))
        result = self.run_compare(base, cur, "--update-baseline")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        with open(base) as f:
            self.assertEqual(json.load(f)["totals"]["indexed_steps"], 150)
        # And the updated baseline now gates cleanly against that run.
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0)

    def test_update_baseline_refuses_inequivalent_run(self):
        base = self.write("base.json", report(indexed_total=100))
        cur = self.write("cur.json", report(equivalent=False))
        result = self.run_compare(base, cur, "--update-baseline")
        self.assertEqual(result.returncode, 1)
        with open(base) as f:
            self.assertEqual(json.load(f)["totals"]["indexed_steps"], 100)

    def test_table1_identical_reports_pass(self):
        base = self.write("base.json", table1_report())
        cur = self.write("cur.json", table1_report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("coverage counters match", result.stdout)

    def test_table1_wall_time_change_alone_passes(self):
        base = self.write("base.json", table1_report())
        drifted = table1_report()
        drifted["assignments"][0]["wall_ms"] = 9999.0
        drifted["assignments"][0]["avg_match_us"] = 77.0
        cur = self.write("cur.json", drifted)
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_table1_coverage_drift_fails(self):
        base = self.write("base.json", table1_report())
        cur = self.write("cur.json", table1_report(
            assignments=[table1_assignment(discrepancies=9)]))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("DRIFT", result.stdout)
        self.assertIn("discrepancies 3 -> 9", result.stdout)

    def test_table1_sample_count_mismatch_fails_readably(self):
        base = self.write("base.json", table1_report(samples=200))
        cur = self.write("cur.json", table1_report(samples=500))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("--samples", combined)
        self.assertNotIn("Traceback", combined)

    def test_table1_missing_assignment_fails(self):
        base = self.write("base.json", table1_report(assignments=[
            table1_assignment("assignment1"),
            table1_assignment("assignment2"),
        ]))
        cur = self.write("cur.json", table1_report(
            assignments=[table1_assignment("assignment1")]))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("MISSING", result.stdout)

    def test_candidate_lacking_baselines_block_fails_with_one_line(self):
        # Satellite contract: a baseline exists, but the candidate carries
        # a different benchmark block — one readable line, no traceback.
        base = self.write("base.json", table1_report())
        cur = self.write("cur.json", report())  # matching-v1 block only
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("has no jfeed-bench-table1-v1 benchmark block",
                      combined)
        self.assertIn("cur.json", combined)
        self.assertIn("base.json", combined)
        self.assertNotIn("Traceback", combined)
        # And the mirror case: matching baseline, table1 candidate.
        result = self.run_compare(self.write("base2.json", report()),
                                  self.write("cur2.json", table1_report()))
        self.assertEqual(result.returncode, 1)
        self.assertIn("has no jfeed-bench-matching-v1 benchmark block",
                      result.stdout + result.stderr)

    def test_table1_update_baseline_copies_current(self):
        base = self.write("base.json", table1_report())
        cur = self.write("cur.json", table1_report(
            assignments=[table1_assignment(discrepancies=9)]))
        result = self.run_compare(base, cur, "--update-baseline")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0)

    def test_table1_update_baseline_refuses_truncated_report(self):
        base = self.write("base.json", table1_report())
        truncated = table1_report()
        del truncated["assignments"][0]["discrepancies"]
        cur = self.write("cur.json", truncated)
        result = self.run_compare(base, cur, "--update-baseline")
        self.assertEqual(result.returncode, 1)
        with open(base) as f:
            self.assertEqual(
                json.load(f)["assignments"][0]["discrepancies"], 3)

    def test_string_steps_fail_with_message_not_traceback(self):
        # Valid JSON, right keys, wrong types: a hand-edited baseline with
        # quoted numbers must produce one line, not a TypeError traceback.
        drifted = report()
        drifted["totals"]["indexed_steps"] = "100"
        base = self.write("base.json", drifted)
        cur = self.write("cur.json", report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("'totals.indexed_steps' should be a number", combined)
        self.assertIn("str '100'", combined)
        self.assertIn("base.json", combined)
        self.assertNotIn("Traceback", combined)

    def test_non_list_assignments_fail_readably(self):
        drifted = report()
        drifted["assignments"] = "assignment1"
        base = self.write("base.json", drifted)
        cur = self.write("cur.json", report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("'assignments' should be a list", combined)
        self.assertNotIn("Traceback", combined)

    def test_table1_string_wall_ms_fails_readably(self):
        drifted = table1_report()
        drifted["assignments"][0]["wall_ms"] = "55.3"
        base = self.write("base.json", table1_report())
        cur = self.write("cur.json", drifted)
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("'wall_ms' should be a number", combined)
        self.assertIn("cur.json", combined)
        self.assertNotIn("Traceback", combined)

    def test_table1_string_samples_fails_readably(self):
        drifted = table1_report()
        drifted["samples"] = "200"
        base = self.write("base.json", drifted)
        cur = self.write("cur.json", table1_report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("'samples' should be a number", combined)
        self.assertNotIn("Traceback", combined)

    def test_update_baseline_refuses_wrongly_typed_report(self):
        base = self.write("base.json", report(indexed_total=100))
        drifted = report()
        drifted["ablation"]["indexed_steps"] = "50"
        cur = self.write("cur.json", drifted)
        result = self.run_compare(base, cur, "--update-baseline")
        self.assertEqual(result.returncode, 1)
        with open(base) as f:
            self.assertEqual(json.load(f)["totals"]["indexed_steps"], 100)

    def test_loadgen_identical_reports_pass(self):
        base = self.write("base.json", loadgen_report())
        cur = self.write("cur.json", loadgen_report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("OK: errors 0", result.stdout)

    def test_loadgen_noisy_p99_within_threshold_passes(self):
        # Default threshold is generous on purpose: 2.9x baseline p99 is
        # runner noise, not a regression.
        base = self.write("base.json", loadgen_report(p99=10000))
        cur = self.write("cur.json", loadgen_report(p99=29000))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_loadgen_p99_regression_beyond_threshold_fails(self):
        base = self.write("base.json", loadgen_report(p99=10000))
        cur = self.write("cur.json", loadgen_report(p99=40000))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)
        self.assertIn("p99", result.stdout)

    def test_loadgen_custom_p99_threshold_tightens_the_gate(self):
        base = self.write("base.json", loadgen_report(p99=10000))
        cur = self.write("cur.json", loadgen_report(p99=12000))
        result = self.run_compare(base, cur, "--p99-threshold", "0.10")
        self.assertEqual(result.returncode, 1)
        self.assertIn("p99", result.stdout)

    def test_loadgen_shed_rate_beyond_tolerance_fails(self):
        base = self.write("base.json", loadgen_report(shed=30))   # 5%
        cur = self.write("cur.json", loadgen_report(shed=150))    # 25%
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("shed_rate", result.stdout)

    def test_loadgen_shed_rate_within_tolerance_passes(self):
        base = self.write("base.json", loadgen_report(shed=30))   # 5%
        cur = self.write("cur.json", loadgen_report(shed=60))     # 10%
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_loadgen_transport_errors_fail(self):
        base = self.write("base.json", loadgen_report())
        cur = self.write("cur.json", loadgen_report(errors=2))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("errors", result.stdout)

    def test_loadgen_workload_mismatch_fails_readably(self):
        base = self.write("base.json", loadgen_report(sent=600))
        drifted = loadgen_report(sent=600)
        drifted["config"]["seed"] = 7
        cur = self.write("cur.json", drifted)
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("not comparable", combined)
        self.assertIn("--seed", combined)
        self.assertNotIn("Traceback", combined)

    def test_loadgen_string_p99_fails_readably(self):
        drifted = loadgen_report()
        drifted["totals"]["latency_us"]["p99"] = "12000"
        base = self.write("base.json", loadgen_report())
        cur = self.write("cur.json", drifted)
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("'totals.latency_us.p99' should be a number", combined)
        self.assertNotIn("Traceback", combined)

    def test_loadgen_update_baseline_refuses_errored_run(self):
        base = self.write("base.json", loadgen_report())
        cur = self.write("cur.json", loadgen_report(errors=1))
        result = self.run_compare(base, cur, "--update-baseline")
        self.assertEqual(result.returncode, 1)
        with open(base) as f:
            self.assertEqual(json.load(f)["totals"]["errors"], 0)

    def test_loadgen_update_baseline_copies_validated_run(self):
        base = self.write("base.json", loadgen_report(p99=10000))
        cur = self.write("cur.json", loadgen_report(p99=99000))
        result = self.run_compare(base, cur, "--update-baseline")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0)

    def test_resubmission_identical_reports_pass(self):
        base = self.write("base.json", resubmission_report())
        cur = self.write("cur.json", resubmission_report())
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("method counters match exactly", result.stdout)

    def test_resubmission_counter_drift_fails(self):
        base = self.write("base.json", resubmission_report())
        cur = self.write("cur.json",
                         resubmission_report(methods_reused=200))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("DRIFT", result.stdout)
        self.assertIn("methods_reused", result.stdout)

    def test_resubmission_partial_hit_rate_below_floor_fails(self):
        # Both runs agree (no drift) but reuse collapsed below the 60%
        # acceptance floor — the absolute gate catches what a
        # baseline-relative one would wave through.
        base = self.write("base.json",
                          resubmission_report(methods_reused=144))  # 50%
        cur = self.write("cur.json",
                         resubmission_report(methods_reused=144))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("BELOW FLOOR", result.stdout)

    def test_resubmission_speedup_regression_beyond_threshold_fails(self):
        base = self.write("base.json", resubmission_report(speedup=2.2))
        cur = self.write("cur.json", resubmission_report(speedup=1.5))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)
        self.assertIn("speedup", result.stdout)

    def test_resubmission_speedup_within_threshold_passes(self):
        base = self.write("base.json", resubmission_report(speedup=2.2))
        cur = self.write("cur.json", resubmission_report(speedup=2.05))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_resubmission_alloc_ratio_regression_fails(self):
        base = self.write("base.json", resubmission_report(alloc_ratio=0.78))
        cur = self.write("cur.json", resubmission_report(alloc_ratio=0.95))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("alloc_ratio", result.stdout)

    def test_resubmission_inequivalent_run_fails(self):
        base = self.write("base.json", resubmission_report())
        cur = self.write("cur.json", resubmission_report(equivalent=False))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        self.assertIn("inequivalence", result.stdout + result.stderr)

    def test_resubmission_config_mismatch_fails_readably(self):
        base = self.write("base.json", resubmission_report())
        drifted = resubmission_report()
        drifted["config"]["seed"] = 7
        cur = self.write("cur.json", drifted)
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("not comparable", combined)
        self.assertIn("--seed", combined)
        self.assertNotIn("Traceback", combined)

    def test_resubmission_update_baseline_refuses_inequivalent(self):
        base = self.write("base.json", resubmission_report())
        cur = self.write("cur.json", resubmission_report(equivalent=False))
        result = self.run_compare(base, cur, "--update-baseline")
        self.assertEqual(result.returncode, 1)
        with open(base) as f:
            self.assertTrue(json.load(f)["totals"]["equivalent"])

    def test_update_baseline_creates_missing_baseline_file(self):
        # Satellite contract: a schema with no checked-in baseline block
        # yet (brand-new bench) bootstraps via --update-baseline instead of
        # failing — parent directories included.
        missing = os.path.join(self.dir.name, "baselines", "BENCH_new.json")
        cur = self.write("cur.json", resubmission_report())
        result = self.run_compare(missing, cur, "--update-baseline")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("created", result.stdout)
        self.assertNotIn("Traceback", result.stdout + result.stderr)
        with open(missing) as f:
            self.assertEqual(json.load(f)["schema"],
                             "jfeed-bench-resubmission-v1")
        # And the created baseline immediately gates the same run cleanly.
        result = self.run_compare(missing, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_update_baseline_refuses_cross_schema_overwrite(self):
        # Pointing --update-baseline at a different benchmark's baseline
        # is nearly always a wrong-file mistake; the block must survive.
        base = self.write("base.json", table1_report())
        cur = self.write("cur.json", resubmission_report())
        result = self.run_compare(base, cur, "--update-baseline")
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("refusing to replace", combined)
        self.assertNotIn("Traceback", combined)
        with open(base) as f:
            self.assertEqual(json.load(f)["schema"],
                             "jfeed-bench-table1-v1")

    def test_update_baseline_repairs_corrupt_baseline(self):
        base = self.write("base.json", "{truncated")
        cur = self.write("cur.json", resubmission_report())
        result = self.run_compare(base, cur, "--update-baseline")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        with open(base) as f:
            self.assertEqual(json.load(f)["schema"],
                             "jfeed-bench-resubmission-v1")

    def test_resubmission_string_counter_fails_readably(self):
        drifted = resubmission_report()
        drifted["totals"]["methods_reused"] = "252"
        base = self.write("base.json", resubmission_report())
        cur = self.write("cur.json", drifted)
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 1)
        combined = result.stdout + result.stderr
        self.assertIn("'totals.methods_reused' should be a number", combined)
        self.assertNotIn("Traceback", combined)

    def test_new_assignment_without_baseline_is_skipped(self):
        base = self.write("base.json", report())
        cur = self.write("cur.json", report(assignments=[
            {"id": "assignment1", "indexed": {"steps": 40},
             "allocs_per_submission": 150},
            {"id": "assignment9", "indexed": {"steps": 999},
             "allocs_per_submission": 999},
        ]))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("no baseline", result.stdout)


if __name__ == "__main__":
    unittest.main()
