// jfeedd: the long-running grading daemon. One instance serves one or many
// knowledge-base assignments over HTTP on loopback:
//
//   jfeedd <assignment-id> [flags]      single-tenant
//   jfeedd <id1>,<id2>,... [flags]      multi-tenant: one shard per id
//   jfeedd --all [flags]                multi-tenant: every assignment
//   jfeedd --list                       list assignment ids
//
// Endpoints (see DESIGN.md §5f/§6b for the full contract):
//   POST /grade     NDJSON submissions in (grade --batch line format; a
//                   line's "assignment" key routes it in multi-tenant
//                   mode), NDJSON outcomes out, input order preserved.
//                   Unknown assignments answer per-line code:404 objects,
//                   admission sheds per-line code:429; only an all-shed
//                   request is HTTP 429 (+ Retry-After) as a whole.
//   GET  /metrics   Prometheus text exposition
//   GET  /healthz   readiness (200 ok | 503 draining/saturated/degraded)
//   GET  /statusz   build info, uptime, utilization, per-shard depth/shed
//   GET  /tracez    recent trace spans (JSON; ?limit=N); ?format=chrome
//                   [&pid=N] exports a Chrome/Perfetto trace instead
//   GET  /events    per-submission flight recorder (NDJSON; ?limit=N,
//                   ?assignment=<id> narrows to one tenant, ?trace_id=<id>
//                   to one distributed trace)
//   GET  /sloz      per-assignment SLO budgets and burn rates (JSON)
//
// Flags:
//   --port <n>             listen port (default 0 = ephemeral, printed)
//   --jobs <n>             grading worker threads, shared by all shards
//                          (default 4)
//   --queue <n>            single-tenant admission quota (default 256)
//   --shard-queue <n>      per-assignment admission quota in multi-tenant
//                          mode (default 64); beyond it that assignment's
//                          submissions are shed with 429
//   --no-cache             disable the content-addressed result cache
//   --method-cache         enable method-level incremental grading
//                          (resubmissions reuse unedited methods)
//   --events <n>           flight-recorder ring capacity (default 1024)
//   --timeout-ms <n>       per-functional-test wall deadline (ms)
//   --max-heap-bytes <n>   interpreter heap budget per test (bytes)
//   --worker-id <n>        fleet worker id when supervised by jfeed-broker;
//                          also arms parent-death detection (on Linux the
//                          kernel delivers SIGTERM if the broker dies, so
//                          an orphaned worker drains instead of lingering)
//   --slo-latency-ms <n>   per-assignment latency objective: a grade slower
//                          than this burns error budget (default 30000)
//   --slo-target-ppm <n>   availability target in parts-per-million
//                          (default 999000 = 99.9%)
//   --slo-window-s <n>     error-budget window seconds (default 3600)
//   --slo-fast-window-s <n> fast burn-rate window seconds (default 60)
//   --slo-min-events <n>   events required in a burn window before its
//                          alert can fire (default 50)
//   --no-slo-health        do not degrade /healthz on fast budget burn
//
// Shutdown: SIGINT/SIGTERM begin a drain — /healthz flips to 503 and new
// POST /grade work is refused while in-flight grading finishes and the
// introspection endpoints keep answering — then the daemon stops and exits
// 0. A second signal is unnecessary; the first one always terminates.
//
// Exit codes: 0 clean shutdown, 2 usage/startup error (unknown assignment,
// unbindable port, or an JFEED_OBS=OFF build, which refuses to serve blind).

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#ifdef __linux__
#include <sys/prctl.h>
#include <unistd.h>
#endif

#include "kb/assignments.h"
#include "service/daemon.h"

namespace {

int ListAssignments() {
  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  for (const auto& id : kb.assignment_ids()) {
    std::printf("%-20s %s\n", id.c_str(), kb.assignment(id).title.c_str());
  }
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <assignment-id>[,<id>...] [--port N] [--jobs N] "
               "[--queue N] [--shard-queue N] [--no-cache] [--method-cache] "
               "[--events N] "
               "[--timeout-ms N] [--max-heap-bytes N] [--worker-id N] "
               "[--slo-latency-ms N] [--slo-target-ppm N] [--slo-window-s N] "
               "[--slo-fast-window-s N] [--slo-min-events N] "
               "[--no-slo-health]\n"
               "       %s --all [flags]   serve every assignment\n"
               "       %s --list\n",
               argv0, argv0, argv0);
  return 2;
}

/// Splits "a1,a2,a3" on commas; empty segments are dropped.
std::vector<std::string> SplitIds(const char* text) {
  std::vector<std::string> ids;
  std::string current;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!current.empty()) ids.push_back(current);
      current.clear();
      if (*p == '\0') break;
    } else {
      current.push_back(*p);
    }
  }
  return ids;
}

bool ParseInt64(const char* text, int64_t* out) {
  char* end = nullptr;
  long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--list") == 0) {
    return ListAssignments();
  }
  bool serve_all = argc >= 2 && std::strcmp(argv[1], "--all") == 0;
  if (argc < 2 || (argv[1][0] == '-' && !serve_all)) return Usage(argv[0]);

  jfeed::service::DaemonOptions options;
  if (!serve_all) {
    std::vector<std::string> ids = SplitIds(argv[1]);
    if (ids.empty()) return Usage(argv[0]);
    if (ids.size() == 1) {
      options.assignment_id = ids.front();
    } else {
      options.assignments = std::move(ids);
    }
  }
  // serve_all leaves both forms empty: the daemon loads every assignment.
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--no-cache") == 0) {
      options.use_result_cache = false;
      continue;
    }
    if (std::strcmp(arg, "--method-cache") == 0) {
      options.use_method_cache = true;
      continue;
    }
    if (std::strcmp(arg, "--no-slo-health") == 0) {
      options.slo_health = false;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", arg);
      return 2;
    }
    int64_t value = 0;
    if (!ParseInt64(argv[i + 1], &value)) {
      std::fprintf(stderr, "bad value for %s: '%s'\n", arg, argv[i + 1]);
      return 2;
    }
    ++i;
    if (std::strcmp(arg, "--port") == 0) {
      if (value > 65535) {
        std::fprintf(stderr, "--port out of range: %lld\n",
                     static_cast<long long>(value));
        return 2;
      }
      options.port = static_cast<uint16_t>(value);
    } else if (std::strcmp(arg, "--jobs") == 0) {
      options.jobs = static_cast<int>(value);
    } else if (std::strcmp(arg, "--queue") == 0) {
      options.queue_capacity = static_cast<size_t>(value);
    } else if (std::strcmp(arg, "--shard-queue") == 0) {
      options.shard_queue_capacity = static_cast<size_t>(value);
    } else if (std::strcmp(arg, "--events") == 0) {
      options.event_capacity = static_cast<size_t>(value);
    } else if (std::strcmp(arg, "--timeout-ms") == 0) {
      options.pipeline.exec.deadline_ms = value;
    } else if (std::strcmp(arg, "--max-heap-bytes") == 0) {
      options.pipeline.exec.max_heap_bytes = value;
    } else if (std::strcmp(arg, "--worker-id") == 0) {
      options.worker_id = static_cast<int>(value);
    } else if (std::strcmp(arg, "--slo-latency-ms") == 0) {
      options.slo.latency_threshold_us = value * 1000;
    } else if (std::strcmp(arg, "--slo-target-ppm") == 0) {
      if (value > 1'000'000) {
        std::fprintf(stderr, "--slo-target-ppm out of range: %lld\n",
                     static_cast<long long>(value));
        return 2;
      }
      options.slo.availability_target_ppm = value;
    } else if (std::strcmp(arg, "--slo-window-s") == 0) {
      options.slo.window_s = value > 0 ? value : 1;
    } else if (std::strcmp(arg, "--slo-fast-window-s") == 0) {
      options.slo.fast_window_s = value > 0 ? value : 1;
    } else if (std::strcmp(arg, "--slo-min-events") == 0) {
      options.slo.min_events = value;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return Usage(argv[0]);
    }
  }

  if (options.worker_id >= 0) {
#ifdef __linux__
    // Supervised worker: die (gracefully, via the drain path below) when
    // the broker process disappears, instead of lingering orphaned on a
    // port nobody routes to. Re-check the parent immediately — if the
    // broker died between fork and here, PDEATHSIG never fires.
    ::prctl(PR_SET_PDEATHSIG, SIGTERM);
    if (::getppid() == 1) {
      std::fprintf(stderr, "jfeedd: supervisor already gone, exiting\n");
      return 2;
    }
#endif
  }

  // Block the termination signals in every thread the daemon will spawn,
  // then claim them with sigwait below: the signal is handled as ordinary
  // control flow on the main thread instead of in a handler context.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  jfeed::service::GradingDaemon daemon(options);
  jfeed::Status status = daemon.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "jfeedd: %s\n", status.ToString().c_str());
    return 2;
  }
  std::string serving;
  if (!options.assignment_id.empty()) {
    serving = "assignment '" + options.assignment_id + "'";
  } else if (!options.assignments.empty()) {
    serving = std::to_string(options.assignments.size()) + " assignments (";
    for (size_t i = 0; i < options.assignments.size(); ++i) {
      if (i > 0) serving += ",";
      serving += options.assignments[i];
    }
    serving += ")";
  } else {
    serving = "all " +
              std::to_string(
                  jfeed::kb::KnowledgeBase::Get().assignment_ids().size()) +
              " assignments";
  }
  std::printf("jfeedd %s serving %s on http://127.0.0.1:%u "
              "(%d workers; POST /grade, GET /metrics /healthz /statusz "
              "/tracez /events /sloz)\n",
              jfeed::service::kJfeedVersion, serving.c_str(), daemon.port(),
              options.jobs);
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&signals, &signal_number);
  std::printf("jfeedd: received %s, draining\n",
              signal_number == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);
  daemon.BeginDrain();
  daemon.Stop();
  std::printf("jfeedd: drained, bye\n");
  return 0;
}
