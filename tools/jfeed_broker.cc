// jfeed-broker: fault-isolation front end for a fleet of jfeedd workers.
// One broker supervises N jfeedd child processes and serves a single
// endpoint set on loopback:
//
//   jfeed_broker <assignment-ids> [flags]
//
// <assignment-ids> is handed to every worker verbatim, so it takes every
// form jfeedd does: one id, a comma-separated list, or --all. With more
// than one id the workers are multi-tenant and each POST /grade line
// carries its own "assignment" routing key — the broker forwards bodies
// (and per-line 404/429 objects in responses) untouched; a worker-level
// 429 (every line shed) relays with its Retry-After header, unretried.
//
// Endpoints (see DESIGN.md §5e/§6 for the contract):
//   POST /grade     forwarded to a healthy worker; retried on a different
//                   worker if one crashes or times out mid-grade; 503 +
//                   Retry-After when the fleet is saturated or no worker
//                   is routable
//   GET  /metrics   broker jfeed_fleet_* metrics + every worker's metrics
//                   merged, worker samples labelled worker="<id>"
//   GET  /healthz   fleet readiness (200 ok | 503 draining/unavailable)
//   GET  /statusz   fleet topology: per-worker pid, port, health, breaker,
//                   restarts, embedded worker /statusz (JSON)
//
// Flags:
//   --port <n>                 broker listen port (default 0 = ephemeral)
//   --workers <n>              jfeedd processes to supervise (default 3)
//   --jfeedd <path>            jfeedd binary (default: next to this binary)
//   --jobs <n>                 grading threads per worker (default 4)
//   --no-cache                 disable each worker's result cache
//   --max-attempts <n>         tries per grade request (default 3)
//   --request-deadline-ms <n>  per-attempt wall deadline (default 60000)
//   --probe-interval-ms <n>    health-probe cadence (default 250)
//   --max-inflight <n>         in-flight cap before shedding (default 64)
//   --drain-grace-ms <n>       SIGTERM->SIGKILL grace on drain (default 10000)
//
// Shutdown: SIGINT/SIGTERM drain the fleet — /healthz flips to 503, new
// POST /grade work is refused, every worker gets SIGTERM and finishes its
// in-flight grades — then the broker exits 0.
//
// Exit codes: 0 clean shutdown, 2 usage/startup error.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#ifdef __linux__
#include <unistd.h>
#endif

#include "fleet/broker.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <assignment-ids> [--port N] [--workers N] [--jfeedd PATH] "
      "[--jobs N] [--no-cache] [--max-attempts N] [--request-deadline-ms N] "
      "[--probe-interval-ms N] [--max-inflight N] [--drain-grace-ms N]\n",
      argv0);
  return 2;
}

bool ParseInt64(const char* text, int64_t* out) {
  char* end = nullptr;
  long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

/// Default jfeedd location: the directory this broker binary lives in.
std::string SiblingJfeedd(const char* argv0) {
  std::string self = argv0;
#ifdef __linux__
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    self = buf;
  }
#endif
  size_t slash = self.rfind('/');
  std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/jfeedd";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') return Usage(argv[0]);

  std::string assignment = argv[1];
  std::string jfeedd_path = SiblingJfeedd(argv[0]);
  int64_t jobs = 4;
  bool no_cache = false;

  jfeed::fleet::BrokerOptions options;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--no-cache") == 0) {
      no_cache = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", arg);
      return 2;
    }
    if (std::strcmp(arg, "--jfeedd") == 0) {
      jfeedd_path = argv[++i];
      continue;
    }
    int64_t value = 0;
    if (!ParseInt64(argv[i + 1], &value)) {
      std::fprintf(stderr, "bad value for %s: '%s'\n", arg, argv[i + 1]);
      return 2;
    }
    ++i;
    if (std::strcmp(arg, "--port") == 0) {
      if (value > 65535) {
        std::fprintf(stderr, "--port out of range: %lld\n",
                     static_cast<long long>(value));
        return 2;
      }
      options.port = static_cast<uint16_t>(value);
    } else if (std::strcmp(arg, "--workers") == 0) {
      options.workers = static_cast<int>(value);
    } else if (std::strcmp(arg, "--jobs") == 0) {
      jobs = value;
    } else if (std::strcmp(arg, "--max-attempts") == 0) {
      options.router.max_attempts = static_cast<int>(value);
    } else if (std::strcmp(arg, "--request-deadline-ms") == 0) {
      options.router.request_deadline_ms = value;
    } else if (std::strcmp(arg, "--probe-interval-ms") == 0) {
      options.router.probe_interval_ms = value;
    } else if (std::strcmp(arg, "--max-inflight") == 0) {
      options.router.max_inflight = static_cast<size_t>(value);
    } else if (std::strcmp(arg, "--drain-grace-ms") == 0) {
      options.supervisor.drain_grace_ms = value;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return Usage(argv[0]);
    }
  }

  options.worker_command = [assignment, jfeedd_path, jobs, no_cache](
                               int worker_id, uint16_t port) {
    std::vector<std::string> argv_strings = {
        jfeedd_path,
        assignment,
        "--port",
        std::to_string(port),
        "--worker-id",
        std::to_string(worker_id),
        "--jobs",
        std::to_string(jobs),
    };
    if (no_cache) argv_strings.push_back("--no-cache");
    return argv_strings;
  };

  // Same sigwait discipline as jfeedd: block the termination signals in
  // every thread we spawn, then claim them as ordinary control flow. The
  // supervisor restores default dispositions in each forked worker.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  jfeed::fleet::Broker broker(options);
  jfeed::Status status = broker.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "jfeed_broker: %s\n", status.ToString().c_str());
    return 2;
  }
  std::printf(
      "jfeed_broker serving assignment '%s' on http://127.0.0.1:%u "
      "(%d supervised jfeedd workers; POST /grade, GET /metrics /healthz "
      "/statusz)\n",
      assignment.c_str(), broker.port(), options.workers);
  std::fflush(stdout);

  int signal_number = 0;
  sigwait(&signals, &signal_number);
  std::printf("jfeed_broker: received %s, draining fleet\n",
              signal_number == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);
  broker.BeginDrain();
  broker.Stop();
  std::printf("jfeed_broker: fleet drained, bye\n");
  return 0;
}
